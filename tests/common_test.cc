#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/histogram.h"
#include "common/io.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/threadpool.h"

namespace blendhouse::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("segment seg_1");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: segment seg_1");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = [] { return Status::IoError("disk"); };
  auto outer = [&]() -> Status {
    BH_RETURN_IF_ERROR(inner());
    return Status::Ok();
  };
  EXPECT_TRUE(outer().IsIoError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(3);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 3);
}

TEST(BitsetTest, SetTestClear) {
  Bitset b(130);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, OutOfRangeTestIsFalse) {
  Bitset b(10);
  EXPECT_FALSE(b.Test(10));
  EXPECT_FALSE(b.Test(1000));
}

TEST(BitsetTest, SetAllRespectsSize) {
  Bitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
}

TEST(BitsetTest, InitialAllSet) {
  Bitset b(65, /*initial=*/true);
  EXPECT_EQ(b.Count(), 65u);
  EXPECT_TRUE(b.Test(64));
}

TEST(BitsetTest, AndOr) {
  Bitset a(100), b(100);
  a.Set(1);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  Bitset both = a;
  both.And(b);
  EXPECT_EQ(both.Count(), 1u);
  EXPECT_TRUE(both.Test(50));
  Bitset either = a;
  either.Or(b);
  EXPECT_EQ(either.Count(), 3u);
}

TEST(BitsetTest, AndNot) {
  Bitset a(130, /*initial=*/true);
  Bitset deletes(130);
  deletes.Set(0);
  deletes.Set(64);
  deletes.Set(129);
  a.AndNot(deletes);
  EXPECT_EQ(a.Count(), 127u);
  EXPECT_FALSE(a.Test(0));
  EXPECT_FALSE(a.Test(64));
  EXPECT_FALSE(a.Test(129));
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(128));
}

TEST(BitsetTest, NotRespectsTail) {
  Bitset b(70);
  b.Set(0);
  b.Set(69);
  b.Not();
  EXPECT_EQ(b.Count(), 68u);
  EXPECT_FALSE(b.Test(0));
  EXPECT_FALSE(b.Test(69));
  EXPECT_TRUE(b.Test(1));
  // Bits past size() must stay clear so Count() and word-level consumers
  // agree with Test()'s out-of-range-is-false convention.
  EXPECT_FALSE(b.Test(70));
  b.Not();
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, RangedCount) {
  Bitset b(200);
  for (size_t i = 0; i < 200; i += 3) b.Set(i);
  for (size_t begin = 0; begin < 200; begin += 17) {
    for (size_t end = begin; end <= 210; end += 23) {
      size_t expect = 0;
      for (size_t i = begin; i < end && i < 200; ++i)
        if (b.Test(i)) ++expect;
      EXPECT_EQ(b.Count(begin, end), expect) << begin << ":" << end;
    }
  }
  EXPECT_EQ(b.Count(0, 200), b.Count());
  EXPECT_EQ(b.Count(64, 128), b.Count() - b.Count(0, 64) - b.Count(128, 200));
}

TEST(BitsetTest, ForEachSetBit) {
  Bitset b(300);
  std::vector<size_t> expect = {0, 1, 63, 64, 65, 127, 128, 199, 299};
  for (size_t i : expect) b.Set(i);
  std::vector<size_t> got;
  b.ForEachSetBit([&](size_t i) { got.push_back(i); });
  EXPECT_EQ(got, expect);
  Bitset empty(300);
  size_t calls = 0;
  empty.ForEachSetBit([&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
}

#if !defined(NDEBUG) || defined(BLENDHOUSE_DCHECKS)
TEST(BitsetDeathTest, WordOpsCheckSizes) {
  Bitset a(100), b(90);
  EXPECT_DEATH(a.And(b), "Bitset::And size mismatch");
  EXPECT_DEATH(a.Or(b), "Bitset::Or size mismatch");
  EXPECT_DEATH(a.AndNot(b), "Bitset::AndNot size mismatch");
}
#endif

TEST(HistogramTest, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(h.Percentile(99), 99.01, 0.01);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
}

TEST(HistogramTest, EmptyIsSafe) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, PercentileClampsOutOfRangeInputs) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) h.Add(i);
  // p > 100 used to read one past the end; p < 0 wrapped the size_t index.
  EXPECT_DOUBLE_EQ(h.Percentile(150), h.Percentile(100));
  EXPECT_DOUBLE_EQ(h.Percentile(-5), h.Percentile(0));
  EXPECT_DOUBLE_EQ(h.Percentile(100), 10.0);
}

TEST(HistogramTest, MergeAppendsSamples) {
  Histogram a, b;
  for (int i = 1; i <= 50; ++i) a.Add(i);
  for (int i = 51; i <= 100; ++i) b.Add(i);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 100u);
  EXPECT_NEAR(a.Percentile(50), 50.5, 0.01);
  EXPECT_DOUBLE_EQ(a.Max(), 100.0);
}

TEST(BucketedHistogramTest, EmptyPercentileIsZero) {
  BucketedHistogram h({1, 10, 100});
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
  EXPECT_EQ(h.Count(), 0u);
}

TEST(BucketedHistogramTest, PercentileInterpolatesWithinBuckets) {
  BucketedHistogram h({10, 100, 1000});
  for (int i = 0; i < 100; ++i) h.Add(5);     // all in [0, 10)
  EXPECT_GT(h.Percentile(50), 0.0);
  EXPECT_LE(h.Percentile(50), 10.0);
  h.Add(500);  // one sample in (100, 1000]
  EXPECT_LE(h.Percentile(99), 1000.0);
  EXPECT_GT(h.Percentile(99.9), 100.0);
}

TEST(BucketedHistogramTest, OverflowBucketReportsLastBound) {
  BucketedHistogram h({10, 100});
  h.Add(1e9);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 100.0);
  EXPECT_EQ(h.bucket_counts().back(), 1u);
}

TEST(BucketedHistogramTest, MergeMismatchedBoundsIsInvalidArgument) {
  BucketedHistogram a({10, 100});
  BucketedHistogram b({10, 200});
  a.Add(5);
  b.Add(150);
  Status s = a.Merge(b);
  EXPECT_TRUE(s.IsInvalidArgument());
  // The failed merge left the target untouched.
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_DOUBLE_EQ(a.Sum(), 5.0);
}

TEST(BucketedHistogramTest, MergeMatchingBoundsAccumulates) {
  BucketedHistogram a({10, 100});
  BucketedHistogram b({10, 100});
  a.Add(5);
  b.Add(50);
  b.Add(7);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_DOUBLE_EQ(a.Sum(), 62.0);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.Submit([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, WaitDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(IoTest, RoundTripPodAndVectors) {
  std::string buf;
  BinaryWriter w(&buf);
  w.Write<uint64_t>(77);
  w.WriteString("hello");
  w.WriteVector(std::vector<float>{1.5f, -2.5f});

  BinaryReader r(buf);
  uint64_t x = 0;
  ASSERT_TRUE(r.Read(&x).ok());
  EXPECT_EQ(x, 77u);
  std::string s;
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(s, "hello");
  std::vector<float> v;
  ASSERT_TRUE(r.ReadVector(&v).ok());
  EXPECT_EQ(v, (std::vector<float>{1.5f, -2.5f}));
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(IoTest, TruncationIsCorruption) {
  std::string buf;
  BinaryWriter w(&buf);
  w.WriteVector(std::vector<double>{1.0, 2.0, 3.0});
  buf.resize(buf.size() - 4);  // chop the tail

  BinaryReader r(buf);
  std::vector<double> v;
  Status s = r.ReadVector(&v);
  EXPECT_FALSE(s.ok());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
}

}  // namespace
}  // namespace blendhouse::common
