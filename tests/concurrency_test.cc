// Multi-threaded stress tests, sized to finish in seconds so the whole file
// runs under TSan in tier-1 (-DBLENDHOUSE_SANITIZE=thread). These tests are
// about absence of data races and torn invariants, not about throughput:
// assertions are deliberately coarse (counts and accounting identities) and
// the real verdict comes from the sanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/blendhouse_system.h"
#include "baselines/dataset.h"
#include "cluster/index_cache.h"
#include "common/future.h"
#include "common/lru_cache.h"
#include "common/rng.h"
#include "common/task_scheduler.h"
#include "common/threadpool.h"
#include "sql/plan_cache.h"
#include "storage/lsm_engine.h"
#include "storage/object_store.h"
#include "storage/segment.h"
#include "tests/test_util.h"

namespace blendhouse {
namespace {

using test::MakeClusteredVectors;

storage::TableSchema StressSchema(size_t dim, size_t buckets) {
  storage::TableSchema schema;
  schema.table_name = "t";
  schema.columns = {{"id", storage::ColumnType::kInt64},
                    {"label", storage::ColumnType::kString},
                    {"emb", storage::ColumnType::kFloatVector}};
  vecindex::IndexSpec spec;
  spec.type = "FLAT";
  spec.dim = dim;
  schema.index_spec = spec;
  schema.vector_column = 2;
  schema.semantic_buckets = buckets;
  return schema;
}

std::vector<storage::Row> StressRows(size_t n, size_t dim, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<storage::Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> vec(dim);
    for (auto& v : vec) v = rng.Gaussian();
    storage::Row row;
    row.values = {static_cast<int64_t>(i), std::string("lbl"), std::move(vec)};
    rows.push_back(std::move(row));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// common::LruCache — concurrent get/put/evict/clear
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, LruCacheGetPutEvict) {
  common::LruCache<int> cache(/*capacity_bytes=*/1024);
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      common::Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kIters; ++i) {
        std::string key = "k" + std::to_string(rng.UniformInt(0, 63));
        switch (rng.UniformInt(0, 4)) {
          case 0:
          case 1:
            cache.Put(key, i, /*bytes=*/32);
            break;
          case 2:
            (void)cache.Get(key);
            break;
          case 3:
            cache.Erase(key);
            break;
          default:
            if (i % 512 == 0) cache.Clear();
            (void)cache.used_bytes();
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Accounting survived the storm: usage is within capacity and the
  // hit/miss counters saw every Get.
  EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

// ---------------------------------------------------------------------------
// sql::PlanCache — concurrent get/put/invalidate
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, PlanCacheGetPutInvalidate) {
  sql::PlanCache cache(/*capacity=*/32);
  constexpr int kThreads = 6;
  constexpr int kIters = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      common::Rng rng(static_cast<uint64_t>(t) + 17);
      for (int i = 0; i < kIters; ++i) {
        std::string sig = "sig" + std::to_string(rng.UniformInt(0, 47));
        if (rng.UniformInt(0, 3) == 0) {
          sql::CachedPlan plan;
          plan.rules_fired = i;
          cache.Put(sig, plan);
        } else if (i % 1000 == 999) {
          cache.Invalidate();
        } else {
          (void)cache.Get(sig);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.size(), 32u);
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

// ---------------------------------------------------------------------------
// common::ThreadPool — concurrent submit + wait
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, ThreadPoolSubmitAndWait) {
  common::ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kSubmitters = 4;
  constexpr int kTasks = 500;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasks; ++i)
        pool.Submit([&counter] { counter.fetch_add(1); });
      pool.Wait();  // Wait() may race with other submitters; must not hang.
    });
  }
  for (auto& th : submitters) th.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), kSubmitters * kTasks);
}

// ---------------------------------------------------------------------------
// common::TaskScheduler — continuations, delay queue, cancellation
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, TaskSchedulerScheduleFromManyThreads) {
  common::TaskScheduler sched(3);
  std::atomic<int> counter{0};
  constexpr int kSubmitters = 4;
  constexpr int kTasks = 500;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&sched, &counter] {
      for (int i = 0; i < kTasks; ++i)
        sched.Schedule([&counter] { counter.fetch_add(1); });
    });
  }
  for (auto& th : submitters) th.join();
  sched.Drain();
  EXPECT_EQ(counter.load(), kSubmitters * kTasks);
  EXPECT_EQ(sched.tasks_executed(), static_cast<uint64_t>(kSubmitters) * kTasks);
}

TEST(ConcurrencyTest, TaskSchedulerDelayQueueOrderingAndTiming) {
  common::TaskScheduler sched(2);
  common::Mutex mu;
  std::vector<int> order;
  auto start = std::chrono::steady_clock::now();
  // Schedule in reverse deadline order from several threads; the delay queue
  // must fire them by deadline regardless of submission order.
  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        int bucket = (t * 20 + i) % 4;  // deadlines 40/30/20/10 ms
        sched.ScheduleAfter(10000 * (4 - bucket), [&mu, &order, bucket] {
          common::MutexLock lock(mu);
          order.push_back(bucket);
        });
      }
    });
  }
  for (auto& th : submitters) th.join();
  sched.Drain();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  // All 60 fired, none earlier than its deadline allows: the earliest
  // deadline is 10 ms, and draining all four waves needs >= 40 ms wall.
  common::MutexLock lock(mu);
  ASSERT_EQ(order.size(), 60u);
  EXPECT_GE(elapsed, 40);
  // Monotone by deadline: all bucket-3 (10 ms) tasks fire before any
  // bucket-0 (40 ms) task.
  size_t last_b3 = 0, first_b0 = order.size();
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 3) last_b3 = i;
    if (order[i] == 0 && i < first_b0) first_b0 = i;
  }
  EXPECT_LT(last_b3, first_b0);
}

TEST(ConcurrencyTest, TaskSchedulerDeferredChargeAccumulates) {
  common::TaskScheduler sched(2);
  // Under a scope, charges accumulate instead of blocking; many logically
  // long I/Os must finish in far less wall time than their sum.
  constexpr int kTasks = 64;
  std::atomic<uint64_t> total_sim{0};
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kTasks; ++i) {
    sched.Schedule([&total_sim, &sched] {
      uint64_t sim = 0;
      {
        common::DeferredChargeScope scope;
        common::ChargeSimLatency(5000);  // 5 ms, deferred
        common::ChargeSimLatency(5000);
        sim = scope.accumulated_micros();
      }
      sched.ScheduleAfter(sim, [&total_sim, sim] {
        total_sim.fetch_add(sim);
      });
    });
  }
  sched.Drain();
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_EQ(total_sim.load(), static_cast<uint64_t>(kTasks) * 10000);
  // 64 x 10 ms = 640 ms sequential; overlapped via the delay queue this
  // takes ~10 ms + overhead. 300 ms is a loose CI-safe bound.
  EXPECT_LT(elapsed_ms, 300);
}

TEST(ConcurrencyTest, FutureThenContinuationsAcrossThreads) {
  common::TaskScheduler sched(2);
  constexpr int kChains = 100;
  std::atomic<int> finished{0};
  std::vector<common::Future<int>> tails;
  std::vector<common::Promise<int>> heads(kChains);
  tails.reserve(kChains);
  for (int i = 0; i < kChains; ++i) {
    tails.push_back(heads[i].GetFuture().Then(&sched, [](int v) {
      return v * 2;
    }).Then(&sched, [&finished](int v) {
      finished.fetch_add(1);
      return v + 1;
    }));
  }
  // Fulfill from a racing thread while continuations attach/run.
  std::thread setter([&heads] {
    for (int i = 0; i < kChains; ++i) heads[i].SetValue(i);
  });
  for (int i = 0; i < kChains; ++i) EXPECT_EQ(tails[i].Get(), i * 2 + 1);
  setter.join();
  EXPECT_EQ(finished.load(), kChains);
}

TEST(ConcurrencyTest, TaskSchedulerCancellationShortCircuits) {
  common::TaskScheduler sched(2);
  auto cancelled = std::make_shared<std::atomic<bool>>(false);
  std::atomic<int> ran{0}, skipped{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    // Half the tasks go through the delay queue, half straight to ready.
    auto task = [cancelled, &ran, &skipped] {
      if (cancelled->load(std::memory_order_acquire)) {
        skipped.fetch_add(1);
        return;
      }
      ran.fetch_add(1);
    };
    if (i % 2 == 0) {
      sched.ScheduleAfter(2000 + 100 * static_cast<uint64_t>(i), task);
    } else {
      sched.Schedule(task);
    }
    if (i == kTasks / 2)
      cancelled->store(true, std::memory_order_release);
  }
  sched.Drain();
  // Every task either ran or observed the cancel flag — none lost.
  EXPECT_EQ(ran.load() + skipped.load(), kTasks);
  // The flag flipped halfway through: at least the delayed tasks scheduled
  // after it must short-circuit.
  EXPECT_GT(skipped.load(), 0);
}

// ---------------------------------------------------------------------------
// cluster::HierarchicalIndexCache — concurrent load/evict across tiers
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, HierarchicalIndexCacheLoadEvict) {
  storage::ObjectStore store(storage::StorageCostModel::Instant());
  common::ThreadPool pool(2);
  storage::TableSchema schema = StressSchema(/*dim=*/8, /*buckets=*/0);
  storage::IngestOptions ingest;
  ingest.max_segment_rows = 50;
  storage::LsmEngine engine(schema, &store, &pool, ingest);
  ASSERT_TRUE(engine.Insert(StressRows(200, 8, /*seed=*/3)).ok());
  ASSERT_TRUE(engine.Flush().ok());
  storage::TableSnapshot snap = engine.Snapshot();
  ASSERT_GE(snap.segments.size(), 2u);

  std::vector<std::string> keys;
  for (const auto& meta : snap.segments)
    keys.push_back(storage::SegmentKeys::Index("t", meta.segment_id));

  cluster::HierarchicalIndexCache::Options opts;
  opts.memory_bytes = 64ull << 10;  // small enough to force evictions
  opts.disk_cost = storage::StorageCostModel::Instant();
  cluster::HierarchicalIndexCache cache(&store, opts);

  constexpr int kThreads = 6;
  constexpr int kIters = 300;
  std::atomic<int> load_failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      common::Rng rng(static_cast<uint64_t>(t) + 5);
      for (int i = 0; i < kIters; ++i) {
        const std::string& key =
            keys[static_cast<size_t>(rng.UniformInt(0, keys.size() - 1))];
        switch (rng.UniformInt(0, 4)) {
          case 0:
            cache.Evict(key);
            break;
          case 1:
            cache.EvictMemoryOnly(key);
            break;
          case 2:
            (void)cache.GetMeta(key);
            break;
          default: {
            auto got = cache.GetOrLoad(key, *schema.index_spec);
            if (!got.ok() || (*got).index == nullptr) load_failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(load_failures.load(), 0);
}

// ---------------------------------------------------------------------------
// storage::LsmEngine — concurrent insert / search / compaction
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, LsmEngineInsertSearchCompact) {
  storage::ObjectStore store(storage::StorageCostModel::Instant());
  common::ThreadPool pool(2);
  constexpr size_t kDim = 8;
  // CLUSTER BY buckets so the first flush trains + publishes the semantic
  // partitioner while readers are probing it (the copy-on-train path).
  storage::TableSchema schema = StressSchema(kDim, /*buckets=*/3);
  storage::IngestOptions ingest;
  ingest.flush_threshold_rows = 64;
  ingest.max_segment_rows = 64;
  ingest.compaction_trigger_segments = 4;
  storage::LsmEngine engine(schema, &store, &pool, ingest);

  constexpr int kWriters = 2;
  constexpr int kBatches = 10;
  constexpr size_t kBatchRows = 48;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> compactions{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&engine, w] {
      for (int b = 0; b < kBatches; ++b) {
        auto rows = StressRows(kBatchRows, kDim,
                               static_cast<uint64_t>(w * 100 + b + 1));
        ASSERT_TRUE(engine.Insert(std::move(rows)).ok());
      }
    });
  }
  threads.emplace_back([&engine, &done, &compactions] {
    while (!done.load()) {
      auto n = engine.CompactIfNeeded();
      ASSERT_TRUE(n.ok());
      compactions.fetch_add(*n);
      std::this_thread::yield();
    }
  });
  auto query = MakeClusteredVectors(1, kDim, 1, /*seed=*/7);
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&engine, &done, &query] {
      while (!done.load()) {
        storage::TableSnapshot snap = engine.Snapshot();
        if (!snap.segments.empty()) {
          auto seg = engine.FetchSegment(snap.segments[0].segment_id);
          // A segment named by the snapshot may have been compacted away
          // since; only its *data* must be intact when the fetch succeeds.
          if (seg.ok()) {
            ASSERT_GT((*seg)->num_rows(), 0u);
          }
        }
        auto partitioner = engine.semantic_partitioner();
        if (partitioner != nullptr && partitioner->trained())
          (void)partitioner->AssignBucket(query.data());
      }
    });
  }

  // Join writers first, then stop the compactor/readers.
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  done.store(true);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  ASSERT_TRUE(engine.Flush().ok());
  // Every inserted row is visible exactly once: compaction merges segments
  // but never duplicates or drops live rows.
  storage::TableSnapshot snap = engine.Snapshot();
  EXPECT_EQ(snap.TotalRows(),
            static_cast<uint64_t>(kWriters) * kBatches * kBatchRows);
  EXPECT_EQ(engine.MemtableRows(), 0u);
  // The partitioner snapshot published during the run stays valid.
  auto partitioner = engine.semantic_partitioner();
  ASSERT_NE(partitioner, nullptr);
  EXPECT_TRUE(partitioner->trained());
}

// Async-flush variant: Insert() hands the memtable to a background flush
// thread, so commit races flush-vs-flush and flush-vs-compaction.
TEST(ConcurrencyTest, LsmEngineAsyncFlushCommitsEverything) {
  storage::ObjectStore store(storage::StorageCostModel::Instant());
  common::ThreadPool pool(2);
  constexpr size_t kDim = 4;
  storage::TableSchema schema = StressSchema(kDim, /*buckets=*/0);
  storage::IngestOptions ingest;
  ingest.flush_threshold_rows = 32;
  ingest.max_segment_rows = 32;
  ingest.async_flush = true;
  storage::LsmEngine engine(schema, &store, &pool, ingest);

  constexpr int kWriters = 3;
  constexpr int kBatches = 8;
  constexpr size_t kBatchRows = 24;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&engine, w] {
      for (int b = 0; b < kBatches; ++b) {
        auto rows = StressRows(kBatchRows, kDim,
                               static_cast<uint64_t>(w * 31 + b + 1));
        ASSERT_TRUE(engine.Insert(std::move(rows)).ok());
      }
    });
  }
  for (auto& th : writers) th.join();
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(engine.Snapshot().TotalRows(),
            static_cast<uint64_t>(kWriters) * kBatches * kBatchRows);
}

// Epoch-based exec-stats accounting: drains racing in-flight queries (the
// worker scale-down scenario) must neither lose nor double-count a query.
// Every successful search folds into exactly one epoch, and every epoch is
// collected by exactly one drain, so the drained `queries` totals sum to the
// number of successful searches.
TEST(ConcurrencyTest, BlendHouseSystemDrainExecStatsRacesQueries) {
  baselines::BlendHouseSystemOptions opts;
  opts.db = core::BlendHouseOptions::Fast();
  opts.db.ingest.max_segment_rows = 64;
  opts.preload = false;
  baselines::BlendHouseSystem system(opts);

  baselines::DatasetSpec spec;
  spec.n = 256;
  spec.dim = 8;
  spec.clusters = 4;
  spec.num_queries = 8;
  baselines::BenchDataset data = baselines::MakeDataset(spec);
  ASSERT_TRUE(system.Load(data).ok());

  constexpr int kSearchers = 4;
  constexpr int kSearchesEach = 30;
  std::atomic<size_t> successes{0};
  std::atomic<bool> stop{false};
  std::atomic<size_t> drained_queries{0};
  std::atomic<double> drained_exec{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kSearchers; ++t) {
    threads.emplace_back([&system, &data, &successes, t] {
      for (int i = 0; i < kSearchesEach; ++i) {
        baselines::SearchRequest req;
        req.query = data.query((t + i) % data.num_queries);
        req.k = 5;
        if (system.Search(req).ok()) successes.fetch_add(1);
      }
    });
  }
  // Drains race the searchers; worker churn makes the epochs non-trivial
  // (queries retried across a scale event still fold exactly once).
  threads.emplace_back([&system, &stop, &drained_queries, &drained_exec] {
    while (!stop.load()) {
      if (system.db().AddReadWorker() != nullptr) {
        auto workers = system.db().read_vw().workers();
        (void)system.db().RemoveReadWorker(workers.front()->id());
      }
      auto stats = system.DrainExecStats();
      drained_queries.fetch_add(stats.queries);
      drained_exec.store(drained_exec.load() + stats.exec_micros);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (int t = 0; t < kSearchers; ++t) threads[t].join();
  stop.store(true);
  threads.back().join();

  // A final drain collects whatever the last open epoch accumulated.
  auto tail = system.DrainExecStats();
  drained_queries.fetch_add(tail.queries);
  drained_exec.store(drained_exec.load() + tail.exec_micros);

  EXPECT_GT(successes.load(), 0u);
  EXPECT_EQ(drained_queries.load(), successes.load());
  if (successes.load() > 0) EXPECT_GT(drained_exec.load(), 0.0);
}

}  // namespace
}  // namespace blendhouse
