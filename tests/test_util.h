#ifndef BLENDHOUSE_TESTS_TEST_UTIL_H_
#define BLENDHOUSE_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "vecindex/distance.h"
#include "vecindex/types.h"

namespace blendhouse::test {

/// Generates `n` vectors drawn from `clusters` Gaussian blobs — the same
/// generator the benches use, shrunk. Clustered data is essential: uniform
/// random vectors make every ANN index look bad and every recall flat.
inline std::vector<float> MakeClusteredVectors(size_t n, size_t dim,
                                               size_t clusters = 8,
                                               uint64_t seed = 42,
                                               float spread = 0.15f) {
  common::Rng rng(seed);
  std::vector<float> centers(clusters * dim);
  for (auto& c : centers) c = rng.Gaussian(0.0f, 1.0f);
  std::vector<float> data(n * dim);
  for (size_t i = 0; i < n; ++i) {
    size_t c = static_cast<size_t>(rng.UniformInt(0, clusters - 1));
    for (size_t d = 0; d < dim; ++d)
      data[i * dim + d] = centers[c * dim + d] + rng.Gaussian(0.0f, spread);
  }
  return data;
}

inline std::vector<vecindex::IdType> SequentialIds(size_t n) {
  std::vector<vecindex::IdType> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<vecindex::IdType>(i);
  return ids;
}

/// Exact top-k ids by brute force, used as ground truth for recall.
inline std::vector<vecindex::IdType> BruteForceTopK(
    const std::vector<float>& data, size_t dim, const float* query, size_t k,
    vecindex::Metric metric = vecindex::Metric::kL2) {
  size_t n = data.size() / dim;
  std::vector<vecindex::Neighbor> all(n);
  for (size_t i = 0; i < n; ++i)
    all[i] = {static_cast<vecindex::IdType>(i),
              vecindex::Distance(metric, query, data.data() + i * dim, dim)};
  k = std::min(k, n);
  std::partial_sort(all.begin(), all.begin() + k, all.end());
  std::vector<vecindex::IdType> ids(k);
  for (size_t i = 0; i < k; ++i) ids[i] = all[i].id;
  return ids;
}

/// |found ∩ truth| / |truth|.
inline double Recall(const std::vector<vecindex::Neighbor>& found,
                     const std::vector<vecindex::IdType>& truth) {
  if (truth.empty()) return 1.0;
  std::unordered_set<vecindex::IdType> truth_set(truth.begin(), truth.end());
  size_t hits = 0;
  for (const auto& n : found) hits += truth_set.count(n.id);
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace blendhouse::test

#endif  // BLENDHOUSE_TESTS_TEST_UTIL_H_
