// Scalar-vs-SIMD parity for the dispatched kernel layer, plus dispatch
// policy (BLENDHOUSE_FORCE_SCALAR, SetActiveTier) and the aligned-storage
// contract. Every compiled tier the host CPU supports is checked against the
// scalar reference over awkward dims (tails, sub-register sizes) and edge
// inputs (NaN, zero norms).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "common/aligned.h"
#include "common/io.h"
#include "common/rng.h"
#include "tests/test_util.h"
#include "vecindex/distance.h"
#include "vecindex/hnsw_index.h"
#include "vecindex/kernels/kernels.h"
#include "vecindex/quantizer.h"

namespace blendhouse {
namespace {

namespace kernels = vecindex::kernels;
using kernels::KernelTable;
using kernels::SimdTier;

// Dims chosen to hit every tail path: sub-register, exact register widths,
// multi-register, and one-past (769) for the masked/scalar epilogues.
const size_t kDims[] = {1, 7, 8, 31, 64, 96, 768, 769};

/// Relative tolerance (1e-5) plus one float ulp per accumulated term: SIMD
/// accumulation trees reassociate float adds, and with cancellation the
/// error scales with the number of terms, not the final value.
void ExpectClose(float a, float b, const char* what, size_t dim) {
  float tol = 1e-5f * std::max({1.0f, std::fabs(a), std::fabs(b)}) +
              1.2e-7f * static_cast<float>(dim);
  EXPECT_NEAR(a, b, tol) << what << " dim=" << dim;
}

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.Gaussian(0.0f, 1.0f);
  return v;
}

std::vector<const KernelTable*> SimdTables() {
  std::vector<const KernelTable*> tables;
  for (SimdTier t : kernels::AvailableTiers())
    if (t != SimdTier::kScalar) tables.push_back(kernels::GetTable(t));
  return tables;
}

TEST(KernelsTest, ScalarTableAlwaysAvailable) {
  ASSERT_NE(kernels::GetTable(SimdTier::kScalar), nullptr);
  EXPECT_EQ(kernels::GetTable(SimdTier::kScalar)->tier, SimdTier::kScalar);
  // Dispatch must have settled on one of the available tiers.
  bool found = false;
  for (SimdTier t : kernels::AvailableTiers())
    if (t == kernels::ActiveTier()) found = true;
  EXPECT_TRUE(found);
}

TEST(KernelsTest, DistanceParityAcrossTiers) {
  const KernelTable* scalar = kernels::GetTable(SimdTier::kScalar);
  for (const KernelTable* table : SimdTables()) {
    for (size_t dim : kDims) {
      auto a = RandomVec(dim, 1 + dim);
      auto b = RandomVec(dim, 2 + dim);
      ExpectClose(table->l2sqr(a.data(), b.data(), dim),
                  scalar->l2sqr(a.data(), b.data(), dim), "l2sqr", dim);
      ExpectClose(table->inner_product(a.data(), b.data(), dim),
                  scalar->inner_product(a.data(), b.data(), dim), "ip", dim);
      ExpectClose(table->cosine(a.data(), b.data(), dim),
                  scalar->cosine(a.data(), b.data(), dim), "cosine", dim);
    }
  }
}

TEST(KernelsTest, BatchParityAcrossTiers) {
  const KernelTable* scalar = kernels::GetTable(SimdTier::kScalar);
  // n values straddle the 4-way blocking boundary and its tail.
  const size_t kCounts[] = {1, 3, 4, 5, 37};
  for (const KernelTable* table : SimdTables()) {
    for (size_t dim : {size_t{7}, size_t{96}, size_t{768}, size_t{769}}) {
      for (size_t n : kCounts) {
        auto query = RandomVec(dim, 3 + dim);
        auto base = RandomVec(n * dim, 4 + dim + n);
        std::vector<float> got(n), want(n);
        table->batch_l2sqr(query.data(), base.data(), n, dim, got.data());
        scalar->batch_l2sqr(query.data(), base.data(), n, dim, want.data());
        for (size_t i = 0; i < n; ++i)
          ExpectClose(got[i], want[i], "batch_l2sqr", dim);
        table->batch_inner_product(query.data(), base.data(), n, dim,
                                   got.data());
        scalar->batch_inner_product(query.data(), base.data(), n, dim,
                                    want.data());
        for (size_t i = 0; i < n; ++i)
          ExpectClose(got[i], want[i], "batch_ip", dim);
      }
    }
  }
}

TEST(KernelsTest, BatchAgreesWithSingleRowKernel) {
  const KernelTable& active = kernels::Get();
  size_t dim = 96, n = 11;
  auto query = RandomVec(dim, 7);
  auto base = RandomVec(n * dim, 8);
  std::vector<float> batch(n);
  active.batch_l2sqr(query.data(), base.data(), n, dim, batch.data());
  for (size_t i = 0; i < n; ++i)
    ExpectClose(batch[i], active.l2sqr(query.data(), base.data() + i * dim,
                                       dim),
                "batch-vs-single", dim);
}

TEST(KernelsTest, Sq8ParityAcrossTiers) {
  const KernelTable* scalar = kernels::GetTable(SimdTier::kScalar);
  for (const KernelTable* table : SimdTables()) {
    for (size_t dim : kDims) {
      auto query = RandomVec(dim, 5 + dim);
      auto vmin = RandomVec(dim, 6 + dim);
      std::vector<float> vscale(dim);
      common::Rng rng(7 + dim);
      std::vector<uint8_t> code(dim);
      for (size_t d = 0; d < dim; ++d) {
        vscale[d] = 0.001f + 0.01f * static_cast<float>(d % 7);
        code[d] = static_cast<uint8_t>(rng.UniformInt(0, 255));
      }
      ExpectClose(table->sq8_l2sqr(query.data(), code.data(), vmin.data(),
                                   vscale.data(), dim),
                  scalar->sq8_l2sqr(query.data(), code.data(), vmin.data(),
                                    vscale.data(), dim),
                  "sq8_l2sqr", dim);
      ExpectClose(
          table->sq8_inner_product(query.data(), code.data(), vmin.data(),
                                   vscale.data(), dim),
          scalar->sq8_inner_product(query.data(), code.data(), vmin.data(),
                                    vscale.data(), dim),
          "sq8_ip", dim);
      float dot_a = 0, norm_a = 0, dot_b = 0, norm_b = 0;
      table->sq8_dot_norm(query.data(), code.data(), vmin.data(),
                          vscale.data(), dim, &dot_a, &norm_a);
      scalar->sq8_dot_norm(query.data(), code.data(), vmin.data(),
                           vscale.data(), dim, &dot_b, &norm_b);
      ExpectClose(dot_a, dot_b, "sq8_dot", dim);
      ExpectClose(norm_a, norm_b, "sq8_norm", dim);
    }
  }
}

TEST(KernelsTest, PqAdcParityAcrossTiers) {
  const KernelTable* scalar = kernels::GetTable(SimdTier::kScalar);
  for (const KernelTable* table : SimdTables()) {
    for (size_t ks : {size_t{16}, size_t{256}}) {   // PQFS and classic PQ
      for (size_t m : {size_t{1}, size_t{3}, size_t{12}, size_t{16}}) {
        auto lut = RandomVec(m * ks, 9 + m + ks);
        common::Rng rng(10 + m);
        size_t n = 13;
        std::vector<uint8_t> codes(n * m);
        for (auto& c : codes)
          c = static_cast<uint8_t>(
              rng.UniformInt(0, static_cast<int>(ks) - 1));
        for (size_t i = 0; i < n; ++i)
          ExpectClose(table->pq_adc(lut.data(), codes.data() + i * m, m, ks),
                      scalar->pq_adc(lut.data(), codes.data() + i * m, m, ks),
                      "pq_adc", m);
        std::vector<float> got(n), want(n);
        table->pq_adc_batch(lut.data(), codes.data(), n, m, ks, got.data());
        scalar->pq_adc_batch(lut.data(), codes.data(), n, m, ks, want.data());
        for (size_t i = 0; i < n; ++i)
          ExpectClose(got[i], want[i], "pq_adc_batch", m);
      }
    }
  }
}

TEST(KernelsTest, NanPropagatesInEveryTier) {
  for (SimdTier t : kernels::AvailableTiers()) {
    const KernelTable* table = kernels::GetTable(t);
    for (size_t dim : {size_t{8}, size_t{769}}) {
      auto a = RandomVec(dim, 11);
      auto b = RandomVec(dim, 12);
      a[dim / 2] = std::numeric_limits<float>::quiet_NaN();
      EXPECT_TRUE(std::isnan(table->l2sqr(a.data(), b.data(), dim)))
          << kernels::SimdTierName(t) << " dim=" << dim;
      EXPECT_TRUE(std::isnan(table->inner_product(a.data(), b.data(), dim)))
          << kernels::SimdTierName(t) << " dim=" << dim;
      EXPECT_TRUE(std::isnan(table->cosine(a.data(), b.data(), dim)))
          << kernels::SimdTierName(t) << " dim=" << dim;
    }
  }
}

TEST(KernelsTest, ZeroNormCosineIsOneInEveryTier) {
  for (SimdTier t : kernels::AvailableTiers()) {
    const KernelTable* table = kernels::GetTable(t);
    for (size_t dim : {size_t{8}, size_t{769}}) {
      std::vector<float> zero(dim, 0.0f);
      auto b = RandomVec(dim, 13);
      EXPECT_EQ(table->cosine(zero.data(), b.data(), dim), 1.0f)
          << kernels::SimdTierName(t);
      EXPECT_EQ(table->cosine(b.data(), zero.data(), dim), 1.0f)
          << kernels::SimdTierName(t);
      EXPECT_EQ(table->cosine(zero.data(), zero.data(), dim), 1.0f)
          << kernels::SimdTierName(t);
    }
  }
  // The precomputed-norm fast path shares the convention.
  EXPECT_EQ(vecindex::CosineFromDot(0.0f, 0.0f, 1.0f), 1.0f);
  EXPECT_EQ(vecindex::CosineFromDot(0.0f, 1.0f, 0.0f), 1.0f);
}

TEST(KernelsTest, ForceScalarEnvPinsChooseTier) {
  ASSERT_EQ(setenv("BLENDHOUSE_FORCE_SCALAR", "1", 1), 0);
  EXPECT_EQ(kernels::ChooseTier(), SimdTier::kScalar);
  ASSERT_EQ(setenv("BLENDHOUSE_FORCE_SCALAR", "0", 1), 0);
  SimdTier best = SimdTier::kScalar;
  for (SimdTier t : kernels::AvailableTiers()) best = t;
  EXPECT_EQ(kernels::ChooseTier(), best);
  ASSERT_EQ(unsetenv("BLENDHOUSE_FORCE_SCALAR"), 0);
  EXPECT_EQ(kernels::ChooseTier(), best);
}

TEST(KernelsTest, ForcedScalarHnswRoundTripKeepsRecall) {
  const size_t dim = 32, n = 500, k = 10;
  auto data = test::MakeClusteredVectors(n, dim, 6, 21);
  auto ids = test::SequentialIds(n);
  auto query = RandomVec(dim, 22);
  auto truth = test::BruteForceTopK(data, dim, query.data(), k);

  auto run = [&]() {
    vecindex::HnswIndex index(dim, vecindex::Metric::kL2);
    EXPECT_TRUE(index.AddWithIds(data.data(), ids.data(), n).ok());
    vecindex::SearchParams params;
    params.k = static_cast<int>(k);
    params.ef_search = 64;
    auto found = index.SearchWithFilter(query.data(), params);
    EXPECT_TRUE(found.ok());
    return test::Recall(*found, truth);
  };

  double recall_simd = run();
  SimdTier prev = kernels::SetActiveTier(SimdTier::kScalar);
  ASSERT_EQ(kernels::ActiveTier(), SimdTier::kScalar);
  double recall_scalar = run();
  kernels::SetActiveTier(prev);

  // Scalar and SIMD builds may differ in float low bits, but the graph and
  // search quality must be equivalent.
  EXPECT_GE(recall_scalar, 0.9);
  EXPECT_GE(recall_simd, 0.9);
  EXPECT_NEAR(recall_scalar, recall_simd, 0.05);
}

TEST(KernelsTest, AlignedVectorIsCacheLineAligned) {
  for (size_t n : {size_t{1}, size_t{17}, size_t{768}, size_t{100000}}) {
    common::AlignedVector<float> v(n, 1.0f);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) %
                  common::kVectorAlignment,
              0u)
        << "n=" << n;
  }
}

TEST(KernelsTest, AlignedVectorSerializationRoundTrip) {
  common::AlignedVector<float> v;
  for (size_t i = 0; i < 100; ++i) v.push_back(static_cast<float>(i) * 0.5f);
  std::string bytes;
  common::BinaryWriter w(&bytes);
  w.WriteVector(v);
  common::BinaryReader r(bytes);
  common::AlignedVector<float> back;
  ASSERT_TRUE(r.ReadVector(&back).ok());
  EXPECT_EQ(back.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) EXPECT_EQ(back[i], v[i]);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(back.data()) %
                common::kVectorAlignment,
            0u);
}

TEST(KernelsTest, ScalarQuantizerFusedKernelsMatchDecode) {
  const size_t dim = 96;
  auto data = test::MakeClusteredVectors(200, dim, 4, 31);
  vecindex::ScalarQuantizer sq;
  ASSERT_TRUE(sq.Train(data.data(), 200, dim).ok());
  auto query = RandomVec(dim, 32);
  std::vector<uint8_t> code(dim);
  sq.Encode(data.data() + 5 * dim, code.data());
  std::vector<float> decoded(dim);
  sq.Decode(code.data(), decoded.data());

  ExpectClose(sq.L2SqrToCode(query.data(), code.data()),
              vecindex::L2Sqr(query.data(), decoded.data(), dim), "sq-l2",
              dim);
  ExpectClose(sq.DotToCode(query.data(), code.data()),
              vecindex::InnerProduct(query.data(), decoded.data(), dim),
              "sq-dot", dim);
  float qnorm = std::sqrt(vecindex::SquaredNorm(query.data(), dim));
  ExpectClose(sq.CosineToCode(query.data(), code.data(), qnorm),
              vecindex::CosineDistance(query.data(), decoded.data(), dim),
              "sq-cosine", dim);
}

// ---------------------------------------------------------------------------
// Reduced-precision kernels (DESIGN.md §13)
// ---------------------------------------------------------------------------

std::vector<uint16_t> EncodeHalf(const std::vector<float>& v, bool fp16) {
  std::vector<uint16_t> out(v.size());
  for (size_t i = 0; i < v.size(); ++i)
    out[i] = fp16 ? kernels::FloatToFp16(v[i]) : kernels::FloatToBf16(v[i]);
  return out;
}

std::vector<int8_t> RandomI8(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<int8_t> v(n);
  for (auto& x : v) x = static_cast<int8_t>(rng.UniformInt(-127, 127));
  return v;
}

TEST(KernelsTest, HalfConversionRoundTrip) {
  // Round-to-nearest error is bounded by half an ulp of the narrow format:
  // 2^-11 relative for fp16 (10 mantissa bits), 2^-8 for bf16 (7 bits).
  common::Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    float f = rng.Gaussian(0.0f, 10.0f);
    float h = kernels::Fp16ToFloat(kernels::FloatToFp16(f));
    EXPECT_NEAR(h, f, std::fabs(f) / 2048.0f + 1e-7f) << f;
    float b = kernels::Bf16ToFloat(kernels::FloatToBf16(f));
    EXPECT_NEAR(b, f, std::fabs(f) / 256.0f + 1e-7f) << f;
  }
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(kernels::Fp16ToFloat(kernels::FloatToFp16(inf)), inf);
  EXPECT_EQ(kernels::Fp16ToFloat(kernels::FloatToFp16(-inf)), -inf);
  EXPECT_EQ(kernels::Fp16ToFloat(kernels::FloatToFp16(1e6f)), inf);  // ovf
  EXPECT_TRUE(std::isnan(kernels::Fp16ToFloat(kernels::FloatToFp16(nan))));
  EXPECT_EQ(kernels::Fp16ToFloat(kernels::FloatToFp16(0.0f)), 0.0f);
  EXPECT_EQ(kernels::Bf16ToFloat(kernels::FloatToBf16(inf)), inf);
  EXPECT_EQ(kernels::Bf16ToFloat(kernels::FloatToBf16(-inf)), -inf);
  EXPECT_TRUE(std::isnan(kernels::Bf16ToFloat(kernels::FloatToBf16(nan))));
  EXPECT_EQ(kernels::Bf16ToFloat(kernels::FloatToBf16(0.0f)), 0.0f);
  // 65504 is the largest finite half; its round-to-nearest-even tie (65520)
  // must bump into the infinity encoding, not wrap the exponent.
  EXPECT_EQ(kernels::Fp16ToFloat(kernels::FloatToFp16(65504.0f)), 65504.0f);
  EXPECT_EQ(kernels::Fp16ToFloat(kernels::FloatToFp16(65520.0f)), inf);
  // Subnormal half range survives the round trip.
  float sub = 6.0e-8f;
  EXPECT_NEAR(kernels::Fp16ToFloat(kernels::FloatToFp16(sub)), sub, 3e-8f);
}

TEST(KernelsTest, ReducedPrecisionParityAcrossTiers) {
  const KernelTable* scalar = kernels::GetTable(SimdTier::kScalar);
  for (const KernelTable* table : SimdTables()) {
    for (size_t dim : kDims) {
      auto q = RandomVec(dim, 14 + dim);
      auto base = RandomVec(dim, 15 + dim);
      auto h16 = EncodeHalf(base, true);
      auto hb = EncodeHalf(base, false);
      ExpectClose(table->fp16_l2sqr(q.data(), h16.data(), dim),
                  scalar->fp16_l2sqr(q.data(), h16.data(), dim), "fp16_l2",
                  dim);
      ExpectClose(table->fp16_inner_product(q.data(), h16.data(), dim),
                  scalar->fp16_inner_product(q.data(), h16.data(), dim),
                  "fp16_ip", dim);
      ExpectClose(table->bf16_l2sqr(q.data(), hb.data(), dim),
                  scalar->bf16_l2sqr(q.data(), hb.data(), dim), "bf16_l2",
                  dim);
      ExpectClose(table->bf16_inner_product(q.data(), hb.data(), dim),
                  scalar->bf16_inner_product(q.data(), hb.data(), dim),
                  "bf16_ip", dim);
      auto q8 = RandomI8(dim, 16 + dim);
      auto c8 = RandomI8(dim, 17 + dim);
      // Symmetric integer kernels are exact: tiers must agree bit for bit.
      EXPECT_EQ(table->i8_l2sqr(q8.data(), c8.data(), dim),
                scalar->i8_l2sqr(q8.data(), c8.data(), dim))
          << "i8_l2 dim=" << dim;
      EXPECT_EQ(table->i8_dot(q8.data(), c8.data(), dim),
                scalar->i8_dot(q8.data(), c8.data(), dim))
          << "i8_dot dim=" << dim;
      const float scale = 0.05f;
      ExpectClose(table->i8_asym_l2sqr(q.data(), c8.data(), scale, dim),
                  scalar->i8_asym_l2sqr(q.data(), c8.data(), scale, dim),
                  "i8_asym_l2", dim);
      ExpectClose(table->i8_asym_dot(q.data(), c8.data(), scale, dim),
                  scalar->i8_asym_dot(q.data(), c8.data(), scale, dim),
                  "i8_asym_dot", dim);
    }
  }
}

TEST(KernelsTest, ReducedPrecisionBatchParityAcrossTiers) {
  const KernelTable* scalar = kernels::GetTable(SimdTier::kScalar);
  // n values straddle the 4-way blocking boundary and its tail.
  const size_t kCounts[] = {1, 3, 4, 5, 37};
  for (const KernelTable* table : SimdTables()) {
    for (size_t dim : {size_t{7}, size_t{96}, size_t{768}, size_t{769}}) {
      for (size_t n : kCounts) {
        auto q = RandomVec(dim, 18 + dim + n);
        auto base = RandomVec(n * dim, 19 + dim + n);
        for (bool fp16 : {true, false}) {
          auto codes = EncodeHalf(base, fp16);
          std::vector<float> got(n), want(n);
          auto l2 = fp16 ? table->batch_fp16_l2sqr : table->batch_bf16_l2sqr;
          auto l2_ref =
              fp16 ? scalar->batch_fp16_l2sqr : scalar->batch_bf16_l2sqr;
          l2(q.data(), codes.data(), n, dim, got.data());
          l2_ref(q.data(), codes.data(), n, dim, want.data());
          for (size_t i = 0; i < n; ++i)
            ExpectClose(got[i], want[i], fp16 ? "b_fp16_l2" : "b_bf16_l2",
                        dim);
          auto ip = fp16 ? table->batch_fp16_inner_product
                         : table->batch_bf16_inner_product;
          auto ip_ref = fp16 ? scalar->batch_fp16_inner_product
                             : scalar->batch_bf16_inner_product;
          ip(q.data(), codes.data(), n, dim, got.data());
          ip_ref(q.data(), codes.data(), n, dim, want.data());
          for (size_t i = 0; i < n; ++i)
            ExpectClose(got[i], want[i], fp16 ? "b_fp16_ip" : "b_bf16_ip",
                        dim);
        }
        auto q8 = RandomI8(dim, 20 + dim + n);
        auto base8 = RandomI8(n * dim, 21 + dim + n);
        std::vector<int32_t> igot(n), iwant(n);
        table->batch_i8_l2sqr(q8.data(), base8.data(), n, dim, igot.data());
        scalar->batch_i8_l2sqr(q8.data(), base8.data(), n, dim, iwant.data());
        EXPECT_EQ(igot, iwant) << "b_i8_l2 dim=" << dim << " n=" << n;
        table->batch_i8_dot(q8.data(), base8.data(), n, dim, igot.data());
        scalar->batch_i8_dot(q8.data(), base8.data(), n, dim, iwant.data());
        EXPECT_EQ(igot, iwant) << "b_i8_dot dim=" << dim << " n=" << n;
      }
    }
  }
}

TEST(KernelsTest, ReducedPrecisionMatchesFp32Reference) {
  // Dispatched kernels against the fp32 kernels run on decoded copies: the
  // half formats decode exactly, int8 after one scale multiply, so the only
  // slack needed is accumulation order.
  const KernelTable& kt = kernels::Get();
  for (size_t dim : {size_t{31}, size_t{96}, size_t{769}}) {
    auto q = RandomVec(dim, 22 + dim);
    auto base = RandomVec(dim, 23 + dim);
    std::vector<float> dec(dim);
    auto h16 = EncodeHalf(base, true);
    for (size_t d = 0; d < dim; ++d) dec[d] = kernels::Fp16ToFloat(h16[d]);
    ExpectClose(kt.fp16_l2sqr(q.data(), h16.data(), dim),
                kt.l2sqr(q.data(), dec.data(), dim), "fp16-ref-l2", dim);
    ExpectClose(kt.fp16_inner_product(q.data(), h16.data(), dim),
                kt.inner_product(q.data(), dec.data(), dim), "fp16-ref-ip",
                dim);
    auto hb = EncodeHalf(base, false);
    for (size_t d = 0; d < dim; ++d) dec[d] = kernels::Bf16ToFloat(hb[d]);
    ExpectClose(kt.bf16_l2sqr(q.data(), hb.data(), dim),
                kt.l2sqr(q.data(), dec.data(), dim), "bf16-ref-l2", dim);
    ExpectClose(kt.bf16_inner_product(q.data(), hb.data(), dim),
                kt.inner_product(q.data(), dec.data(), dim), "bf16-ref-ip",
                dim);
    auto c8 = RandomI8(dim, 24 + dim);
    const float scale = 0.02f;
    for (size_t d = 0; d < dim; ++d)
      dec[d] = scale * static_cast<float>(c8[d]);
    ExpectClose(kt.i8_asym_l2sqr(q.data(), c8.data(), scale, dim),
                kt.l2sqr(q.data(), dec.data(), dim), "i8asym-ref-l2", dim);
    ExpectClose(kt.i8_asym_dot(q.data(), c8.data(), scale, dim),
                kt.inner_product(q.data(), dec.data(), dim), "i8asym-ref-ip",
                dim);
    // Symmetric integer kernels against a plain integer loop: exact.
    auto q8 = RandomI8(dim, 25 + dim);
    int32_t l2 = 0, dot = 0;
    for (size_t d = 0; d < dim; ++d) {
      int32_t diff = static_cast<int32_t>(q8[d]) - c8[d];
      l2 += diff * diff;
      dot += static_cast<int32_t>(q8[d]) * c8[d];
    }
    EXPECT_EQ(kt.i8_l2sqr(q8.data(), c8.data(), dim), l2) << dim;
    EXPECT_EQ(kt.i8_dot(q8.data(), c8.data(), dim), dot) << dim;
  }
}

TEST(KernelsTest, ReducedPrecisionNanPropagatesInEveryTier) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (SimdTier t : kernels::AvailableTiers()) {
    const KernelTable* table = kernels::GetTable(t);
    for (size_t dim : {size_t{8}, size_t{769}}) {
      auto q = RandomVec(dim, 26);
      auto base = RandomVec(dim, 27);
      auto h16 = EncodeHalf(base, true);
      auto hb = EncodeHalf(base, false);
      // NaN on the fp32 query side.
      auto qn = q;
      qn[dim / 2] = nan;
      EXPECT_TRUE(std::isnan(table->fp16_l2sqr(qn.data(), h16.data(), dim)))
          << kernels::SimdTierName(t) << " dim=" << dim;
      EXPECT_TRUE(std::isnan(table->bf16_inner_product(qn.data(), hb.data(),
                                                       dim)))
          << kernels::SimdTierName(t) << " dim=" << dim;
      // NaN stored inside the half codes.
      h16[dim / 2] = kernels::FloatToFp16(nan);
      hb[dim / 2] = kernels::FloatToBf16(nan);
      EXPECT_TRUE(std::isnan(table->fp16_inner_product(q.data(), h16.data(),
                                                       dim)))
          << kernels::SimdTierName(t) << " dim=" << dim;
      EXPECT_TRUE(std::isnan(table->bf16_l2sqr(q.data(), hb.data(), dim)))
          << kernels::SimdTierName(t) << " dim=" << dim;
    }
  }
}

TEST(KernelsTest, ForcedScalarPrecisionStoreMatchesDispatched) {
  // PrecisionStore resolves the kernel table per call, so pinning the scalar
  // tier must reproduce the dispatched distances: bitwise for int8 (integer
  // accumulation plus identical float scaling), within accumulation order
  // for the half formats.
  const size_t dim = 96, n = 64;
  auto data = test::MakeClusteredVectors(n, dim, 4, 43);
  auto query = RandomVec(dim, 44);
  for (vecindex::Precision p :
       {vecindex::Precision::kFp16, vecindex::Precision::kBf16,
        vecindex::Precision::kInt8}) {
    for (vecindex::Metric m :
         {vecindex::Metric::kL2, vecindex::Metric::kInnerProduct,
          vecindex::Metric::kCosine}) {
      vecindex::PrecisionStore store;
      store.Configure(p, dim, m);
      store.Train(data.data(), n);
      store.Append(data.data(), n);
      vecindex::PrecisionStore::QueryCtx ctx;
      store.PrepareQuery(query.data(), &ctx);
      std::vector<float> dispatched(n), forced(n);
      store.BatchDistance(ctx, 0, n, dispatched.data());
      SimdTier prev = kernels::SetActiveTier(SimdTier::kScalar);
      ASSERT_EQ(kernels::ActiveTier(), SimdTier::kScalar);
      store.BatchDistance(ctx, 0, n, forced.data());
      kernels::SetActiveTier(prev);
      for (size_t i = 0; i < n; ++i) {
        if (p == vecindex::Precision::kInt8) {
          EXPECT_EQ(dispatched[i], forced[i])
              << vecindex::PrecisionName(p) << " metric="
              << static_cast<int>(m) << " row=" << i;
        } else {
          ExpectClose(dispatched[i], forced[i], "forced-scalar-store", dim);
        }
      }
    }
  }
}

TEST(KernelsTest, HnswRecallAtEachReducedPrecision) {
  const size_t dim = 32, n = 500, k = 10;
  auto data = test::MakeClusteredVectors(n, dim, 6, 45);
  auto ids = test::SequentialIds(n);
  auto query = RandomVec(dim, 46);
  auto truth = test::BruteForceTopK(data, dim, query.data(), k);
  for (vecindex::Precision p :
       {vecindex::Precision::kFp16, vecindex::Precision::kBf16,
        vecindex::Precision::kInt8}) {
    vecindex::HnswOptions opts;
    opts.precision = p;
    vecindex::HnswIndex index(dim, vecindex::Metric::kL2, opts);
    ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), n).ok());
    EXPECT_EQ(index.StoragePrecision(), p);
    vecindex::SearchParams params;
    params.k = static_cast<int>(k);
    params.ef_search = 64;
    auto found = index.SearchWithFilter(query.data(), params);
    ASSERT_TRUE(found.ok());
    EXPECT_GE(test::Recall(*found, truth), 0.85)
        << vecindex::PrecisionName(p);
    // Save/Load keeps the quantized graph searchable, identical results.
    std::string bytes;
    ASSERT_TRUE(index.Save(&bytes).ok());
    vecindex::HnswIndex loaded(dim, vecindex::Metric::kL2, opts);
    ASSERT_TRUE(loaded.Load(bytes).ok());
    auto again = loaded.SearchWithFilter(query.data(), params);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->size(), found->size());
    for (size_t i = 0; i < found->size(); ++i)
      EXPECT_EQ((*again)[i].id, (*found)[i].id) << vecindex::PrecisionName(p);
  }
}

}  // namespace
}  // namespace blendhouse
