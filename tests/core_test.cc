#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "baselines/dataset.h"
#include "common/metrics.h"
#include "core/blendhouse.h"
#include "tests/test_util.h"

namespace blendhouse::core {
namespace {

using test::MakeClusteredVectors;

constexpr size_t kDim = 8;

/// End-to-end fixture: a BlendHouse instance with latency simulation off and
/// a pre-ingested table of clustered vectors with scalar attributes.
class BlendHouseE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    BlendHouseOptions opts = BlendHouseOptions::Fast();
    opts.ingest.max_segment_rows = 200;
    db_ = std::make_unique<BlendHouse>(opts);
    auto created = db_->ExecuteSql(
        "CREATE TABLE items (id Int64, attr Int64, label String,"
        " emb Array(Float32),"
        " INDEX ann emb TYPE HNSW('DIM=8','M=8'));");
    ASSERT_TRUE(created.ok()) << created.status().ToString();
  }

  void Ingest(size_t n, uint64_t seed = 7) {
    data_ = MakeClusteredVectors(n, kDim, 6, seed);
    n_ = n;
    std::vector<storage::Row> rows;
    for (size_t i = 0; i < n; ++i) {
      storage::Row row;
      row.values = {
          static_cast<int64_t>(i), static_cast<int64_t>(i % 100),
          std::string(i % 2 == 0 ? "even" : "odd"),
          std::vector<float>(data_.begin() + i * kDim,
                             data_.begin() + (i + 1) * kDim)};
      rows.push_back(std::move(row));
    }
    ASSERT_TRUE(db_->Insert("items", std::move(rows)).ok());
    ASSERT_TRUE(db_->Flush("items").ok());
  }

  std::string VecLiteral(const float* v) {
    std::string s = "[";
    for (size_t d = 0; d < kDim; ++d) {
      if (d > 0) s += ",";
      s += std::to_string(v[d]);
    }
    return s + "]";
  }

  std::unique_ptr<BlendHouse> db_;
  std::vector<float> data_;
  size_t n_ = 0;
};

TEST_F(BlendHouseE2E, PureVectorSearchFindsNearest) {
  Ingest(1000);
  const float* q = data_.data() + 123 * kDim;
  auto result = db_->Query("SELECT id, dist FROM items ORDER BY L2Distance("
                           "emb, " + VecLiteral(q) + ") AS dist LIMIT 10;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 10u);
  // The query point itself is row 123 at distance ~0.
  EXPECT_EQ(std::get<int64_t>(result->rows[0].values[0]), 123);
  EXPECT_NEAR(std::get<double>(result->rows[0].values[1]), 0.0, 1e-5);
  // Distances ascend.
  for (size_t i = 1; i < result->rows.size(); ++i)
    EXPECT_LE(std::get<double>(result->rows[i - 1].values[1]),
              std::get<double>(result->rows[i].values[1]));
}

TEST_F(BlendHouseE2E, RecallAgainstBruteForce) {
  Ingest(2000);
  sql::QuerySettings settings = db_->options().settings;
  settings.ef_search = 128;
  double total_recall = 0;
  const int kQueries = 10;
  for (int qi = 0; qi < kQueries; ++qi) {
    const float* q = data_.data() + (qi * 131 % n_) * kDim;
    auto truth = test::BruteForceTopK(data_, kDim, q, 10);
    auto result = db_->QueryWithSettings(
        "SELECT id FROM items ORDER BY L2Distance(emb, " + VecLiteral(q) +
            ") LIMIT 10;",
        settings);
    ASSERT_TRUE(result.ok());
    std::vector<vecindex::Neighbor> hits;
    for (const auto& row : result->rows)
      hits.push_back({std::get<int64_t>(row.values[0]), 0});
    total_recall += test::Recall(hits, truth);
  }
  EXPECT_GT(total_recall / kQueries, 0.9);
}

TEST_F(BlendHouseE2E, FilteredSearchRespectsPredicate) {
  Ingest(1000);
  const float* q = data_.data();
  auto result = db_->Query(
      "SELECT id, attr, dist FROM items WHERE attr < 10 ORDER BY "
      "L2Distance(emb, " + VecLiteral(q) + ") AS dist LIMIT 20;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 20u);  // 10% selectivity over 1000 rows
  for (const auto& row : result->rows)
    EXPECT_LT(std::get<int64_t>(row.values[1]), 10);
}

TEST_F(BlendHouseE2E, StringEqualityFilter) {
  Ingest(500);
  const float* q = data_.data();
  auto result = db_->Query(
      "SELECT id FROM items WHERE label = 'even' ORDER BY "
      "L2Distance(emb, " + VecLiteral(q) + ") LIMIT 15;");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 15u);
  for (const auto& row : result->rows)
    EXPECT_EQ(std::get<int64_t>(row.values[0]) % 2, 0);
}

TEST_F(BlendHouseE2E, AllStrategiesAgreeOnFilteredResults) {
  Ingest(1200);
  const float* q = data_.data() + 5 * kDim;
  std::string sql =
      "SELECT id FROM items WHERE attr < 50 ORDER BY L2Distance(emb, " +
      VecLiteral(q) + ") LIMIT 10;";

  std::map<sql::ExecStrategy, std::set<int64_t>> results;
  for (sql::ExecStrategy strategy :
       {sql::ExecStrategy::kBruteForce, sql::ExecStrategy::kPreFilter,
        sql::ExecStrategy::kPostFilter}) {
    sql::QuerySettings settings = db_->options().settings;
    settings.forced_strategy = strategy;
    settings.ef_search = 256;
    settings.use_plan_cache = false;  // forced strategy must not be cached
    auto result = db_->QueryWithSettings(sql, settings);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->rows.size(), 10u)
        << sql::ExecStrategyName(strategy);
    for (const auto& row : result->rows)
      results[strategy].insert(std::get<int64_t>(row.values[0]));
  }
  // Brute force is exact; approximate strategies must agree substantially.
  const auto& exact = results[sql::ExecStrategy::kBruteForce];
  for (auto strategy : {sql::ExecStrategy::kPreFilter,
                        sql::ExecStrategy::kPostFilter}) {
    size_t overlap = 0;
    for (int64_t id : results[strategy]) overlap += exact.count(id);
    EXPECT_GE(overlap, 8u) << sql::ExecStrategyName(strategy);
  }
}

TEST_F(BlendHouseE2E, FilterBitmapCacheHitsOnRepeat) {
  Ingest(1000);
  sql::QuerySettings settings = db_->options().settings;
  settings.forced_strategy = sql::ExecStrategy::kPreFilter;
  settings.use_plan_cache = false;  // force real execution on every run
  settings.short_circuit = false;
  std::string sql =
      "SELECT id, attr FROM items WHERE attr < 50 ORDER BY L2Distance(emb, " +
      VecLiteral(data_.data()) + ") LIMIT 10;";

  auto r1 = db_->QueryWithSettings(sql, settings);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_GT(r1->stats.filter_cache_misses, 0u);

  // Second identical query: every segment bitmap comes from the worker cache.
  auto r2 = db_->QueryWithSettings(sql, settings);
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2->stats.filter_cache_hits, 0u);
  EXPECT_EQ(r2->stats.filter_cache_misses, 0u);
  ASSERT_EQ(r2->rows.size(), r1->rows.size());
  for (size_t i = 0; i < r1->rows.size(); ++i)
    EXPECT_EQ(std::get<int64_t>(r2->rows[i].values[0]),
              std::get<int64_t>(r1->rows[i].values[0]));

  // A DELETE bumps the segments' delete epochs: cached bitmaps that predate
  // it must not be served, and results must exclude the deleted rows.
  ASSERT_TRUE(db_->ExecuteSql("DELETE FROM items WHERE attr < 10;").ok());
  auto r3 = db_->QueryWithSettings(sql, settings);
  ASSERT_TRUE(r3.ok());
  EXPECT_GT(r3->stats.filter_cache_misses, 0u);
  for (const auto& row : r3->rows)
    EXPECT_GE(std::get<int64_t>(row.values[1]), 10);

  // Toggling the knob off bypasses the cache entirely.
  settings.use_filter_bitmap_cache = false;
  auto r4 = db_->QueryWithSettings(sql, settings);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4->stats.filter_cache_hits, 0u);
  EXPECT_EQ(r4->stats.filter_cache_misses, 0u);
}

TEST_F(BlendHouseE2E, PreFilterDeletesOnlyExcludesDeleted) {
  // No WHERE clause + deletes: the pre-filter path builds its bitmap purely
  // from the delete bitmap (word-level SetAll + AndNot).
  Ingest(500);
  ASSERT_TRUE(db_->ExecuteSql("DELETE FROM items WHERE attr < 50;").ok());
  sql::QuerySettings settings = db_->options().settings;
  settings.forced_strategy = sql::ExecStrategy::kPreFilter;
  settings.use_plan_cache = false;
  auto result = db_->QueryWithSettings(
      "SELECT id, attr FROM items ORDER BY L2Distance(emb, " +
          VecLiteral(data_.data()) + ") LIMIT 20;",
      settings);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 20u);
  for (const auto& row : result->rows)
    EXPECT_GE(std::get<int64_t>(row.values[1]), 50);
}

TEST_F(BlendHouseE2E, HighlySelectiveFilterStillReturnsK) {
  Ingest(1000);
  const float* q = data_.data();
  // attr = 7 keeps ~1% of rows; the adaptive post-filter refill or CBO's
  // brute-force choice must still produce the full k where possible.
  auto result = db_->Query(
      "SELECT id, attr FROM items WHERE attr = 7 ORDER BY "
      "L2Distance(emb, " + VecLiteral(q) + ") LIMIT 5;");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 5u);
  for (const auto& row : result->rows)
    EXPECT_EQ(std::get<int64_t>(row.values[1]), 7);
}

TEST_F(BlendHouseE2E, DistanceRangePushdown) {
  Ingest(800);
  const float* q = data_.data() + 50 * kDim;
  // First learn a radius from an unrestricted query.
  auto base = db_->Query("SELECT id, d FROM items ORDER BY L2Distance(emb, " +
                         VecLiteral(q) + ") AS d LIMIT 20;");
  ASSERT_TRUE(base.ok());
  double radius = std::get<double>(base->rows[9].values[1]);
  char radius_literal[32];
  std::snprintf(radius_literal, sizeof(radius_literal), "%.17g", radius);

  auto ranged = db_->Query("SELECT id, d FROM items WHERE d < " +
                           std::string(radius_literal) +
                           " ORDER BY L2Distance(emb, " + VecLiteral(q) +
                           ") AS d LIMIT 20;");
  ASSERT_TRUE(ranged.ok()) << ranged.status().ToString();
  EXPECT_GE(ranged->rows.size(), 5u);
  EXPECT_LE(ranged->rows.size(), 20u);
  for (const auto& row : ranged->rows)
    EXPECT_LT(std::get<double>(row.values[1]), radius);
}

TEST_F(BlendHouseE2E, ScalarOnlySelect) {
  Ingest(300);
  auto result =
      db_->Query("SELECT id, label FROM items WHERE id < 5 LIMIT 10;");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 5u);
}

TEST_F(BlendHouseE2E, AnnPaginationPagesAreContiguous) {
  // Page N+1 must continue exactly where page N stopped: fetching the top
  // 40 in one query and in four LIMIT 10 OFFSET 10*i pages must yield the
  // identical id sequence — no duplicates, no skips at page boundaries.
  Ingest(1000);
  const float* q = data_.data() + 321 * kDim;
  auto all = db_->Query("SELECT id, dist FROM items ORDER BY L2Distance("
                        "emb, " + VecLiteral(q) + ") AS dist LIMIT 40;");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->rows.size(), 40u);
  std::vector<int64_t> paged_ids;
  for (int page = 0; page < 4; ++page) {
    auto r = db_->Query(
        "SELECT id, dist FROM items ORDER BY L2Distance(emb, " +
        VecLiteral(q) + ") AS dist LIMIT 10 OFFSET " +
        std::to_string(page * 10) + ";");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 10u) << "page " << page;
    for (const auto& row : r->rows)
      paged_ids.push_back(std::get<int64_t>(row.values[0]));
  }
  for (size_t i = 0; i < 40; ++i)
    EXPECT_EQ(paged_ids[i], std::get<int64_t>(all->rows[i].values[0]))
        << "rank " << i;
}

TEST_F(BlendHouseE2E, FilteredAnnPaginationNoDupNoSkip) {
  Ingest(800);
  const float* q = data_.data();
  std::string base =
      "SELECT id FROM items WHERE label = 'even' ORDER BY L2Distance(emb, " +
      VecLiteral(q) + ") AS d";
  auto all = db_->Query(base + " LIMIT 30;");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->rows.size(), 30u);
  std::set<int64_t> seen;
  size_t rank = 0;
  for (int page = 0; page < 3; ++page) {
    auto r = db_->Query(base + " LIMIT 10 OFFSET " +
                        std::to_string(page * 10) + ";");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    for (const auto& row : r->rows) {
      int64_t id = std::get<int64_t>(row.values[0]);
      EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
      EXPECT_EQ(id, std::get<int64_t>(all->rows[rank].values[0]))
          << "rank " << rank;
      ++rank;
    }
  }
  EXPECT_EQ(seen.size(), 30u);
}

TEST_F(BlendHouseE2E, OffsetPastEndReturnsEmpty) {
  Ingest(100);
  const float* q = data_.data();
  auto r = db_->Query("SELECT id FROM items ORDER BY L2Distance(emb, " +
                      VecLiteral(q) + ") LIMIT 10 OFFSET 100;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(BlendHouseE2E, ScalarOffsetSkipsRows) {
  Ingest(300);
  auto r = db_->Query(
      "SELECT id FROM items WHERE id < 20 LIMIT 5 OFFSET 10;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 5u);
  // Scalar scans qualify rows in storage order, so OFFSET 10 lands on 10..14.
  for (size_t i = 0; i < 5; ++i)
    EXPECT_EQ(std::get<int64_t>(r->rows[i].values[0]),
              static_cast<int64_t>(10 + i));
}

TEST_F(BlendHouseE2E, SelectStarIncludesDistanceAlias) {
  Ingest(100);
  const float* q = data_.data();
  auto result = db_->Query("SELECT * FROM items ORDER BY L2Distance(emb, " +
                           VecLiteral(q) + ") AS d LIMIT 3;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->column_names.back(), "d");
  // The embedding column is materialized under SELECT *.
  bool has_vec = false;
  for (const auto& v : result->rows[0].values)
    if (std::holds_alternative<std::vector<float>>(v)) has_vec = true;
  EXPECT_TRUE(has_vec);
}

TEST_F(BlendHouseE2E, InsertViaSqlAndQueryBack) {
  auto ins = db_->ExecuteSql(
      "INSERT INTO items VALUES (9001, 1, 'x', [9, 9, 9, 9, 9, 9, 9, 9]),"
      " (9002, 2, 'y', [9, 9, 9, 9, 9, 9, 9, 8]);");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  ASSERT_TRUE(db_->Flush("items").ok());
  auto result = db_->Query(
      "SELECT id FROM items ORDER BY L2Distance(emb,"
      " [9, 9, 9, 9, 9, 9, 9, 9]) LIMIT 1;");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(result->rows[0].values[0]), 9001);
}

TEST_F(BlendHouseE2E, InsertArityMismatchRejected) {
  auto ins = db_->ExecuteSql("INSERT INTO items VALUES (1, 2);");
  EXPECT_FALSE(ins.ok());
}

TEST_F(BlendHouseE2E, UpdateCreatesNewVersionAndHidesOld) {
  Ingest(400);
  // Move row 10 far away in vector space.
  auto upd = db_->ExecuteSql(
      "UPDATE items SET emb = [50, 50, 50, 50, 50, 50, 50, 50], label ="
      " 'moved' WHERE id = 10;");
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();

  // Searching near the new location finds the updated row.
  auto near_new = db_->Query(
      "SELECT id, label FROM items ORDER BY L2Distance(emb,"
      " [50, 50, 50, 50, 50, 50, 50, 50]) LIMIT 1;");
  ASSERT_TRUE(near_new.ok());
  ASSERT_EQ(near_new->rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(near_new->rows[0].values[0]), 10);
  EXPECT_EQ(std::get<std::string>(near_new->rows[0].values[1]), "moved");

  // The old version no longer appears near its original location.
  const float* old_vec = data_.data() + 10 * kDim;
  auto near_old = db_->Query("SELECT id FROM items ORDER BY L2Distance(emb, " +
                             VecLiteral(old_vec) + ") LIMIT 5;");
  ASSERT_TRUE(near_old.ok());
  for (const auto& row : near_old->rows) {
    if (std::get<int64_t>(row.values[0]) == 10) {
      FAIL() << "stale version of row 10 still visible";
    }
  }
}

TEST_F(BlendHouseE2E, DeleteHidesRows) {
  Ingest(300);
  auto del = db_->ExecuteSql("DELETE FROM items WHERE attr < 50;");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  auto all = db_->Query("SELECT id, attr FROM items WHERE attr < 50;");
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->rows.empty());
  // Rows with attr >= 50 still there.
  auto rest = db_->Query("SELECT id FROM items WHERE attr >= 50;");
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->rows.size(), 150u);
}

TEST_F(BlendHouseE2E, CompactionAfterDeleteShrinksRows) {
  Ingest(600);
  ASSERT_TRUE(db_->ExecuteSql("DELETE FROM items WHERE attr < 20;").ok());
  uint64_t before = db_->engine("items")->Snapshot().TotalRows();
  auto jobs = db_->ExecuteSql("OPTIMIZE TABLE items;");
  ASSERT_TRUE(jobs.ok()) << jobs.status().ToString();
  auto snap = db_->engine("items")->Snapshot();
  EXPECT_LT(snap.TotalRows(), before);
  EXPECT_EQ(snap.TotalDeletedRows(), 0u);

  // Queries still work after compaction rebuilt the indexes.
  const float* q = data_.data();
  auto result = db_->Query("SELECT id FROM items ORDER BY L2Distance(emb, " +
                           VecLiteral(q) + ") LIMIT 5;");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 5u);
}

TEST_F(BlendHouseE2E, ExplainReportsStrategyAndPlan) {
  Ingest(500);
  const float* q = data_.data();
  auto explain = db_->Explain(
      "SELECT id FROM items WHERE attr < 10 ORDER BY L2Distance(emb, " +
      VecLiteral(q) + ") LIMIT 5;");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("strategy="), std::string::npos);
  EXPECT_NE(explain->find("AnnScan"), std::string::npos);
  EXPECT_NE(explain->find("cost"), std::string::npos);
}

TEST_F(BlendHouseE2E, PlanCacheHitsOnRepeatedShape) {
  Ingest(300);
  const float* q1 = data_.data();
  const float* q2 = data_.data() + 17 * kDim;
  std::string sql1 =
      "SELECT id FROM items WHERE attr < 30 ORDER BY L2Distance(emb, " +
      VecLiteral(q1) + ") LIMIT 5;";
  std::string sql2 =
      "SELECT id FROM items WHERE attr < 77 ORDER BY L2Distance(emb, " +
      VecLiteral(q2) + ") LIMIT 9;";
  auto r1 = db_->Query(sql1);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->stats.used_plan_cache);
  auto r2 = db_->Query(sql2);  // same shape, different parameters
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->stats.used_plan_cache);
  EXPECT_TRUE(r2->stats.used_short_circuit);
  EXPECT_GE(db_->plan_cache().hits(), 1u);
}

TEST_F(BlendHouseE2E, QueryErrorsAreClean) {
  Ingest(50);
  EXPECT_TRUE(db_->Query("SELECT id FROM missing LIMIT 1;")
                  .status()
                  .IsNotFound());
  EXPECT_FALSE(db_->Query("SELECT nosuchcol FROM items LIMIT 1;").ok());
  EXPECT_FALSE(db_->Query("SELECT id FROM items ORDER BY L2Distance(attr,"
                          " [1.0]) LIMIT 1;")
                   .ok());
}

TEST_F(BlendHouseE2E, CreateTableTwiceRejected) {
  auto again = db_->ExecuteSql(
      "CREATE TABLE items (id Int64, emb Array(Float32),"
      " INDEX a emb TYPE FLAT('DIM=8'));");
  EXPECT_TRUE(again.status().code() ==
              common::Status::Code::kAlreadyExists);
}

TEST_F(BlendHouseE2E, ConcurrentQueriesAreSafe) {
  Ingest(1500);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        const float* q = data_.data() + ((t * 37 + i * 13) % n_) * kDim;
        auto result = db_->Query(
            "SELECT id FROM items WHERE attr < 80 ORDER BY "
            "L2Distance(emb, " + VecLiteral(q) + ") LIMIT 5;");
        if (!result.ok() || result->rows.size() != 5) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(BlendHouseE2E, ElasticScaleUpKeepsServing) {
  Ingest(1500);
  ASSERT_TRUE(db_->PreloadTable("items").ok());
  cluster::Worker* fresh = db_->AddReadWorker();
  ASSERT_NE(fresh, nullptr);
  // Immediately after scaling, queries still return correct results
  // (serving handles segments that moved to the cold worker).
  const float* q = data_.data() + 8 * kDim;
  auto result = db_->Query("SELECT id FROM items ORDER BY L2Distance(emb, " +
                           VecLiteral(q) + ") LIMIT 10;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 10u);
  EXPECT_EQ(std::get<int64_t>(result->rows[0].values[0]), 8);
}

TEST_F(BlendHouseE2E, WorkerRemovalStillServes) {
  Ingest(1000);
  auto workers = db_->read_vw().workers();
  ASSERT_GE(workers.size(), 2u);
  ASSERT_TRUE(db_->RemoveReadWorker(workers[0]->id()).ok());
  const float* q = data_.data() + 3 * kDim;
  auto result = db_->Query("SELECT id FROM items ORDER BY L2Distance(emb, " +
                           VecLiteral(q) + ") LIMIT 5;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 5u);
}

TEST(BlendHouseIndexTypes, EveryIndexTypeServesSqlQueries) {
  // The pluggable-index contribution end-to-end: the same SQL works against
  // every registered index family, including the disk-based one.
  auto data = MakeClusteredVectors(600, kDim, 6, 33);
  for (const char* type :
       {"FLAT", "HNSW", "HNSWSQ", "IVFFLAT", "IVFPQ", "IVFPQFS", "DISKANN"}) {
    BlendHouseOptions opts = BlendHouseOptions::Fast();
    BlendHouse db(opts);
    std::string ddl =
        std::string("CREATE TABLE t (id Int64, emb Array(Float32),"
                    " INDEX a emb TYPE ") +
        type + "('DIM=8','NLIST=8','PQ_M=4','SIMULATE_DISK=0'));";
    ASSERT_TRUE(db.ExecuteSql(ddl).ok()) << type;
    std::vector<storage::Row> rows;
    for (size_t i = 0; i < 600; ++i) {
      storage::Row row;
      row.values = {static_cast<int64_t>(i),
                    std::vector<float>(data.begin() + i * kDim,
                                       data.begin() + (i + 1) * kDim)};
      rows.push_back(std::move(row));
    }
    ASSERT_TRUE(db.Insert("t", std::move(rows)).ok());
    ASSERT_TRUE(db.Flush("t").ok());

    std::string vec = "[";
    for (size_t d = 0; d < kDim; ++d)
      vec += (d ? "," : "") + std::to_string(data[100 * kDim + d]);
    vec += "]";
    auto result = db.Query("SELECT id FROM t ORDER BY L2Distance(emb, " +
                           vec + ") LIMIT 5;");
    ASSERT_TRUE(result.ok()) << type << ": " << result.status().ToString();
    ASSERT_EQ(result->rows.size(), 5u) << type;
    if (std::string(type) != "IVFPQ" && std::string(type) != "IVFPQFS") {
      EXPECT_EQ(std::get<int64_t>(result->rows[0].values[0]), 100) << type;
    }
  }
}

TEST(BlendHouseMetrics, InnerProductOrdersBySimilarity) {
  BlendHouse db(BlendHouseOptions::Fast());
  ASSERT_TRUE(db.ExecuteSql("CREATE TABLE t (id Int64, emb Array(Float32),"
                            " INDEX a emb TYPE FLAT('DIM=3','METRIC=IP'));")
                  .ok());
  // Vectors with increasing dot product against [1, 0, 0].
  ASSERT_TRUE(db.ExecuteSql("INSERT INTO t VALUES"
                            " (1, [0.1, 0, 0]), (2, [0.9, 0, 0]),"
                            " (3, [0.5, 0, 0]);")
                  .ok());
  ASSERT_TRUE(db.Flush("t").ok());
  auto result = db.Query(
      "SELECT id, s FROM t ORDER BY InnerProduct(emb, [1.0, 0.0, 0.0])"
      " AS s LIMIT 3;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 3u);
  // Highest dot product first; the alias reports the raw (positive) dot.
  EXPECT_EQ(std::get<int64_t>(result->rows[0].values[0]), 2);
  EXPECT_NEAR(std::get<double>(result->rows[0].values[1]), 0.9, 1e-5);
  EXPECT_EQ(std::get<int64_t>(result->rows[2].values[0]), 1);
}

TEST(BlendHouseMultiTable, TablesAreIsolated) {
  BlendHouse db(BlendHouseOptions::Fast());
  for (const char* name : {"a", "b"}) {
    ASSERT_TRUE(db.ExecuteSql(std::string("CREATE TABLE ") + name +
                              " (id Int64, emb Array(Float32),"
                              " INDEX x emb TYPE FLAT('DIM=2'));")
                    .ok());
  }
  ASSERT_TRUE(db.ExecuteSql("INSERT INTO a VALUES (1, [1.0, 0.0]);").ok());
  ASSERT_TRUE(db.ExecuteSql("INSERT INTO b VALUES (2, [0.0, 1.0]);").ok());
  ASSERT_TRUE(db.Flush("a").ok());
  ASSERT_TRUE(db.Flush("b").ok());
  auto ra = db.Query(
      "SELECT id FROM a ORDER BY L2Distance(emb, [1.0, 0.0]) LIMIT 10;");
  auto rb = db.Query(
      "SELECT id FROM b ORDER BY L2Distance(emb, [1.0, 0.0]) LIMIT 10;");
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->rows.size(), 1u);
  ASSERT_EQ(rb->rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(ra->rows[0].values[0]), 1);
  EXPECT_EQ(std::get<int64_t>(rb->rows[0].values[0]), 2);
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(BlendHouseAsyncFlush, InsertStreamsVisibleAfterFlush) {
  BlendHouseOptions opts = BlendHouseOptions::Fast();
  opts.ingest.async_flush = true;
  opts.ingest.flush_threshold_rows = 64;
  opts.ingest.max_segment_rows = 64;
  BlendHouse db(opts);
  ASSERT_TRUE(db.ExecuteSql("CREATE TABLE t (id Int64, emb Array(Float32),"
                            " INDEX a emb TYPE FLAT('DIM=2'));")
                  .ok());
  common::Rng rng(5);
  for (int batch = 0; batch < 8; ++batch) {
    std::vector<storage::Row> rows;
    for (int i = 0; i < 40; ++i) {
      storage::Row row;
      row.values = {static_cast<int64_t>(batch * 40 + i),
                    std::vector<float>{rng.Gaussian(), rng.Gaussian()}};
      rows.push_back(std::move(row));
    }
    ASSERT_TRUE(db.Insert("t", std::move(rows)).ok());
  }
  // Flush() drains all background flushes: every row is now queryable.
  ASSERT_TRUE(db.Flush("t").ok());
  EXPECT_EQ(db.engine("t")->Snapshot().TotalRows(), 320u);
  auto result = db.Query(
      "SELECT id FROM t ORDER BY L2Distance(emb, [0.0, 0.0]) LIMIT 320;");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 320u);
}

TEST(BlendHouseLaionWorkload, RegexPlusRangePlusVectorInOneQuery) {
  // The paper's LAION workload (§V-A.2): caption regex + similarity-score
  // range + vector search, all in one SQL statement.
  BlendHouseOptions opts = BlendHouseOptions::Fast();
  opts.ingest.max_segment_rows = 256;
  BlendHouse db(opts);
  ASSERT_TRUE(db.ExecuteSql("CREATE TABLE laion (id Int64, caption String,"
                            " sim Float64, emb Array(Float32),"
                            " INDEX a emb TYPE HNSW('DIM=8'));")
                  .ok());
  auto data = MakeClusteredVectors(800, kDim, 6, 21);
  const char* captions[] = {"a cat on a mat", "dog 42 runs", "9 lives",
                            "sunset beach", "cat and dog", "4 birds"};
  std::vector<storage::Row> rows;
  common::Rng rng(3);
  for (size_t i = 0; i < 800; ++i) {
    storage::Row row;
    row.values = {static_cast<int64_t>(i), std::string(captions[i % 6]),
                  rng.Uniform(),
                  std::vector<float>(data.begin() + i * kDim,
                                     data.begin() + (i + 1) * kDim)};
    rows.push_back(std::move(row));
  }
  ASSERT_TRUE(db.Insert("laion", std::move(rows)).ok());
  ASSERT_TRUE(db.Flush("laion").ok());

  std::string vec = "[";
  for (size_t d = 0; d < kDim; ++d)
    vec += (d ? "," : "") + std::to_string(data[d]);
  vec += "]";
  // Regex "^[0-9]" matches captions starting with a digit (ids % 6 in
  // {2, 5}); the sim range keeps ~70%.
  auto result = db.Query(
      "SELECT id, caption, sim FROM laion"
      " WHERE caption REGEXP '^[0-9]' AND sim BETWEEN 0.3 AND 1.0"
      " ORDER BY L2Distance(emb, " + vec + ") LIMIT 12;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 12u);
  for (const auto& row : result->rows) {
    const std::string& caption = std::get<std::string>(row.values[1]);
    ASSERT_FALSE(caption.empty());
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(caption[0])))
        << caption;
    double sim = std::get<double>(row.values[2]);
    EXPECT_GE(sim, 0.3);
    EXPECT_LE(sim, 1.0);
  }

  // LIKE variant of the same shape.
  auto like = db.Query(
      "SELECT id, caption FROM laion WHERE caption LIKE '%cat%'"
      " ORDER BY L2Distance(emb, " + vec + ") LIMIT 8;");
  ASSERT_TRUE(like.ok());
  EXPECT_EQ(like->rows.size(), 8u);
  for (const auto& row : like->rows)
    EXPECT_NE(std::get<std::string>(row.values[1]).find("cat"),
              std::string::npos);
}

TEST(BlendHouseFaultTolerance, ConcurrentQueriesSurviveWorkerRemoval) {
  // §II-E: query-level retry re-snapshots the topology; queries racing a
  // scale-down either succeed directly or via one retry.
  BlendHouseOptions opts = BlendHouseOptions::Fast();
  opts.read_workers = 3;
  opts.ingest.max_segment_rows = 128;
  BlendHouse db(opts);
  ASSERT_TRUE(db.ExecuteSql("CREATE TABLE t (id Int64, emb Array(Float32),"
                            " INDEX a emb TYPE HNSW('DIM=8'));")
                  .ok());
  auto data = MakeClusteredVectors(1000, kDim, 4, 13);
  std::vector<storage::Row> rows;
  for (size_t i = 0; i < 1000; ++i) {
    storage::Row row;
    row.values = {static_cast<int64_t>(i),
                  std::vector<float>(data.begin() + i * kDim,
                                     data.begin() + (i + 1) * kDim)};
    rows.push_back(std::move(row));
  }
  ASSERT_TRUE(db.Insert("t", std::move(rows)).ok());
  ASSERT_TRUE(db.Flush("t").ok());

  std::atomic<int> failures{0};
  std::atomic<bool> removed{false};
  std::thread querier([&] {
    for (int i = 0; i < 60; ++i) {
      std::string vec = "[";
      for (size_t d = 0; d < kDim; ++d)
        vec += (d ? "," : "") + std::to_string(data[(i % 100) * kDim + d]);
      vec += "]";
      auto r = db.Query("SELECT id FROM t ORDER BY L2Distance(emb, " + vec +
                        ") LIMIT 5;");
      if (!r.ok() || r->rows.size() != 5) failures.fetch_add(1);
      if (i == 20 && !removed.exchange(true))
        (void)db.RemoveReadWorker(db.read_vw().workers().front()->id());
    }
  });
  querier.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(db.read_vw().num_workers(), 2u);
}

TEST(BlendHouseSettings, SetStatementUpdatesSessionSettings) {
  BlendHouse db(BlendHouseOptions::Fast());
  ASSERT_TRUE(db.ExecuteSql("SET ef_search = 256;").ok());
  EXPECT_EQ(db.options().settings.ef_search, 256);
  ASSERT_TRUE(db.ExecuteSql("SET nprobe = 32;").ok());
  EXPECT_EQ(db.options().settings.nprobe, 32);
  ASSERT_TRUE(db.ExecuteSql("SET use_cbo = OFF;").ok());
  EXPECT_FALSE(db.options().settings.use_cbo);
  ASSERT_TRUE(db.ExecuteSql("SET use_cbo = ON;").ok());
  EXPECT_TRUE(db.options().settings.use_cbo);
  ASSERT_TRUE(db.ExecuteSql("SET semantic_probe_buckets = 4;").ok());
  EXPECT_EQ(db.options().settings.semantic_probe_buckets, 4u);
  // Invalid values & unknown settings rejected.
  EXPECT_FALSE(db.ExecuteSql("SET ef_search = 0;").ok());
  EXPECT_TRUE(db.ExecuteSql("SET no_such_knob = 1;").status().IsNotFound());
}

TEST(BlendHouseSettings, SetEfSearchChangesQueryBehaviour) {
  BlendHouseOptions opts = BlendHouseOptions::Fast();
  BlendHouse db(opts);
  ASSERT_TRUE(db.ExecuteSql("CREATE TABLE t (id Int64, emb Array(Float32),"
                            " INDEX a emb TYPE HNSW('DIM=8','M=6',"
                            "'EF_CONSTRUCTION=40'));")
                  .ok());
  auto data = MakeClusteredVectors(2000, kDim, 16, 55, 1.0f);
  std::vector<storage::Row> rows;
  for (size_t i = 0; i < 2000; ++i) {
    storage::Row row;
    row.values = {static_cast<int64_t>(i),
                  std::vector<float>(data.begin() + i * kDim,
                                     data.begin() + (i + 1) * kDim)};
    rows.push_back(std::move(row));
  }
  ASSERT_TRUE(db.Insert("t", std::move(rows)).ok());
  ASSERT_TRUE(db.Flush("t").ok());

  auto recall_at = [&](int ef) {
    EXPECT_TRUE(
        db.ExecuteSql("SET ef_search = " + std::to_string(ef) + ";").ok());
    double total = 0;
    for (int q = 0; q < 10; ++q) {
      const float* query = data.data() + (q * 191 % 2000) * kDim;
      auto truth = test::BruteForceTopK(data, kDim, query, 10);
      std::string vec = "[";
      for (size_t d = 0; d < kDim; ++d)
        vec += (d ? "," : "") + std::to_string(query[d]);
      vec += "]";
      auto r = db.Query("SELECT id FROM t ORDER BY L2Distance(emb, " + vec +
                        ") LIMIT 10;");
      EXPECT_TRUE(r.ok());
      std::vector<vecindex::Neighbor> hits;
      for (const auto& row : r->rows)
        hits.push_back({std::get<int64_t>(row.values[0]), 0});
      total += test::Recall(hits, truth);
    }
    return total / 10;
  };
  double low = recall_at(10);
  double high = recall_at(300);
  EXPECT_GE(high, low);
  EXPECT_GT(high, 0.95);
}

TEST(BlendHouseSettings, SetDistancePrecisionFlowsIntoNewIndexes) {
  BlendHouse db(BlendHouseOptions::Fast());
  // String knob with a fixed name set.
  EXPECT_FALSE(db.ExecuteSql("SET distance_precision = 1;").ok());
  EXPECT_FALSE(db.ExecuteSql("SET distance_precision = 'fp12';").ok());
  ASSERT_TRUE(db.ExecuteSql("SET distance_precision = 'int8';").ok());
  EXPECT_EQ(db.options().settings.distance_precision,
            vecindex::Precision::kInt8);
  ASSERT_TRUE(db.ExecuteSql("SET rerank_depth = 64;").ok());
  EXPECT_FALSE(db.ExecuteSql("SET rerank_depth = 0;").ok());

  // An index created after the SET stores int8 codes, so queries against it
  // must pass through the executor's fp32 rerank stage (DESIGN.md §13) and
  // still return accurate top-k.
  ASSERT_TRUE(db.ExecuteSql("CREATE TABLE t (id Int64, emb Array(Float32),"
                            " INDEX a emb TYPE HNSW('DIM=8','M=8'));")
                  .ok());
  auto data = MakeClusteredVectors(600, kDim, 8, 77, 1.0f);
  std::vector<storage::Row> rows;
  for (size_t i = 0; i < 600; ++i) {
    storage::Row row;
    row.values = {static_cast<int64_t>(i),
                  std::vector<float>(data.begin() + i * kDim,
                                     data.begin() + (i + 1) * kDim)};
    rows.push_back(std::move(row));
  }
  ASSERT_TRUE(db.Insert("t", std::move(rows)).ok());
  ASSERT_TRUE(db.Flush("t").ok());

  auto& reg = common::metrics::MetricsRegistry::Instance();
  uint64_t before = reg.GetCounter("bh_exec_fp32_rerank_rows")->Value();
  double total = 0;
  for (int q = 0; q < 10; ++q) {
    const float* query = data.data() + (q * 67 % 600) * kDim;
    auto truth = test::BruteForceTopK(data, kDim, query, 10);
    std::string vec = "[";
    for (size_t d = 0; d < kDim; ++d)
      vec += (d ? "," : "") + std::to_string(query[d]);
    vec += "]";
    auto r = db.Query("SELECT id FROM t ORDER BY L2Distance(emb, " + vec +
                      ") LIMIT 10;");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    std::vector<vecindex::Neighbor> hits;
    for (const auto& row : r->rows)
      hits.push_back({std::get<int64_t>(row.values[0]), 0});
    total += test::Recall(hits, truth);
  }
  EXPECT_GT(total / 10, 0.9);
  EXPECT_GT(reg.GetCounter("bh_exec_fp32_rerank_rows")->Value(), before)
      << "query never entered the fp32 rerank stage";
}

// ---------------------------------------------------------------------------
// Semantic partitioning end-to-end
// ---------------------------------------------------------------------------

TEST(BlendHouseSemantic, ClusterByPrunesSegments) {
  BlendHouseOptions opts = BlendHouseOptions::Fast();
  opts.ingest.max_segment_rows = 100;
  BlendHouse db(opts);
  ASSERT_TRUE(db.ExecuteSql("CREATE TABLE t (id Int64, emb Array(Float32),"
                            " INDEX a emb TYPE HNSW('DIM=8'))"
                            " CLUSTER BY emb INTO 6 BUCKETS;")
                  .ok());
  auto data = MakeClusteredVectors(1200, kDim, 6, 99, 0.1f);
  std::vector<storage::Row> rows;
  for (size_t i = 0; i < 1200; ++i) {
    storage::Row row;
    row.values = {static_cast<int64_t>(i),
                  std::vector<float>(data.begin() + i * kDim,
                                     data.begin() + (i + 1) * kDim)};
    rows.push_back(std::move(row));
  }
  ASSERT_TRUE(db.Insert("t", std::move(rows)).ok());
  ASSERT_TRUE(db.Flush("t").ok());

  std::string vec = "[";
  for (size_t d = 0; d < kDim; ++d)
    vec += (d ? "," : "") + std::to_string(data[d]);
  vec += "]";

  sql::QuerySettings pruned = db.options().settings;
  pruned.semantic_pruning = true;
  pruned.semantic_probe_buckets = 1;
  auto with = db.QueryWithSettings(
      "SELECT id FROM t ORDER BY L2Distance(emb, " + vec + ") LIMIT 5;",
      pruned);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  EXPECT_EQ(with->rows.size(), 5u);
  EXPECT_LT(with->stats.segments_after_semantic_prune,
            with->stats.segments_total);

  sql::QuerySettings full = pruned;
  full.semantic_pruning = false;
  auto without = db.QueryWithSettings(
      "SELECT id FROM t ORDER BY L2Distance(emb, " + vec + ") LIMIT 5;",
      full);
  ASSERT_TRUE(without.ok());
  // With well-separated clusters, probing 1 bucket matches the unpruned
  // top-1 (the query point itself).
  EXPECT_EQ(std::get<int64_t>(with->rows[0].values[0]),
            std::get<int64_t>(without->rows[0].values[0]));
}

TEST(BlendHouseSemantic, AdaptiveExpansionFindsFilteredRows) {
  BlendHouseOptions opts = BlendHouseOptions::Fast();
  opts.ingest.max_segment_rows = 100;
  BlendHouse db(opts);
  ASSERT_TRUE(db.ExecuteSql("CREATE TABLE t (id Int64, attr Int64,"
                            " emb Array(Float32),"
                            " INDEX a emb TYPE HNSW('DIM=8'))"
                            " CLUSTER BY emb INTO 4 BUCKETS;")
                  .ok());
  auto data = MakeClusteredVectors(800, kDim, 4, 17, 0.1f);
  std::vector<storage::Row> rows;
  for (size_t i = 0; i < 800; ++i) {
    storage::Row row;
    // attr selective: only 1 in 50 rows pass.
    row.values = {static_cast<int64_t>(i), static_cast<int64_t>(i % 50),
                  std::vector<float>(data.begin() + i * kDim,
                                     data.begin() + (i + 1) * kDim)};
    rows.push_back(std::move(row));
  }
  ASSERT_TRUE(db.Insert("t", std::move(rows)).ok());
  ASSERT_TRUE(db.Flush("t").ok());

  std::string vec = "[";
  for (size_t d = 0; d < kDim; ++d)
    vec += (d ? "," : "") + std::to_string(data[d]);
  vec += "]";

  sql::QuerySettings settings = db.options().settings;
  settings.semantic_probe_buckets = 1;
  settings.adaptive_semantic = true;
  auto result = db.QueryWithSettings(
      "SELECT id, attr FROM t WHERE attr = 3 ORDER BY L2Distance(emb, " +
          vec + ") LIMIT 10;",
      settings);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 16 matching rows exist; adaptive expansion must find >= k of them even
  // though one bucket holds only ~4.
  EXPECT_EQ(result->rows.size(), 10u);
  for (const auto& row : result->rows)
    EXPECT_EQ(std::get<int64_t>(row.values[1]), 3);
}

// ---------------------------------------------------------------------------
// Query-level retry path (fault tolerance, §II-E)
// ---------------------------------------------------------------------------

/// Fixture with multiple segments spread over a 2-worker VW, plus a helper
/// that swaps out the entire worker set — the most hostile topology change a
/// query can race against.
class BlendHouseRetry : public ::testing::Test {
 protected:
  void SetUp() override {
    BlendHouseOptions opts = BlendHouseOptions::Fast();
    opts.ingest.max_segment_rows = 100;
    db_ = std::make_unique<BlendHouse>(opts);
    ASSERT_TRUE(db_->ExecuteSql("CREATE TABLE t (id Int64,"
                                " emb Array(Float32),"
                                " INDEX a emb TYPE HNSW('DIM=8'));")
                    .ok());
    data_ = MakeClusteredVectors(400, kDim, 4, 11);
    std::vector<storage::Row> rows;
    for (size_t i = 0; i < 400; ++i) {
      storage::Row row;
      row.values = {static_cast<int64_t>(i),
                    std::vector<float>(data_.begin() + i * kDim,
                                       data_.begin() + (i + 1) * kDim)};
      rows.push_back(std::move(row));
    }
    ASSERT_TRUE(db_->Insert("t", std::move(rows)).ok());
    ASSERT_TRUE(db_->Flush("t").ok());
  }

  /// Replaces every worker in the read VW, invalidating any placement
  /// computed before the call (all assigned worker ids disappear).
  void ReplaceAllWorkers() {
    std::vector<std::string> ids;
    for (cluster::Worker* w : db_->read_vw().workers()) ids.push_back(w->id());
    for (size_t i = 0; i < ids.size(); ++i) db_->AddReadWorker();
    for (const std::string& id : ids)
      ASSERT_TRUE(db_->RemoveReadWorker(id).ok());
  }

  std::string Query() {
    std::string vec = "[";
    for (size_t d = 0; d < kDim; ++d)
      vec += (d ? "," : "") + std::to_string(data_[d]);
    vec += "]";
    return "SELECT id FROM t ORDER BY L2Distance(emb, " + vec +
           ") LIMIT 5;";
  }

  std::unique_ptr<BlendHouse> db_;
  std::vector<float> data_;
};

TEST_F(BlendHouseRetry, TopologyChangeMidQueryRetriesOnceAndSucceeds) {
  size_t hook_calls = 0;
  db_->SetExecutorTopologyHookForTest([&](size_t attempt) {
    ++hook_calls;
    // Sabotage only the first attempt: the placement it just computed now
    // references workers that no longer exist.
    if (attempt == 0) ReplaceAllWorkers();
  });
  auto result = db_->Query(Query());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 5u);
  EXPECT_EQ(result->stats.retries, 1u);
  EXPECT_GE(hook_calls, 2u);
}

TEST_F(BlendHouseRetry, ExhaustedRetriesReturnAborted) {
  db_->SetExecutorTopologyHookForTest(
      [&](size_t) { ReplaceAllWorkers(); });
  auto result = db_->Query(Query());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::Status::Code::kAborted);
}

TEST_F(BlendHouseRetry, RetriesCountedInStats) {
  sql::QuerySettings settings = db_->options().settings;
  settings.max_query_retries = 3;
  size_t sabotaged = 0;
  db_->SetExecutorTopologyHookForTest([&](size_t attempt) {
    if (attempt < 2) {
      ++sabotaged;
      ReplaceAllWorkers();
    }
  });
  auto result = db_->QueryWithSettings(Query(), settings);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(sabotaged, 2u);
  EXPECT_EQ(result->stats.retries, 2u);
}

// ---------------------------------------------------------------------------
// ExecStats async time breakdown
// ---------------------------------------------------------------------------

TEST(BlendHouseExecStats, BreakdownSumsToExecMicros) {
  // Single worker, single thread, one segment, dominant simulated storage
  // latency: queue-wait + compute + sim-I/O must account for essentially the
  // whole execution time.
  BlendHouseOptions opts;
  opts.read_workers = 1;
  opts.worker_threads = 1;
  opts.remote_cost = {/*base_latency_micros=*/20000, /*bytes_per_micro=*/1e9,
                      /*simulate_latency=*/true};
  opts.rpc_cost.simulate_latency = false;
  opts.worker.cache.disk_cost = storage::StorageCostModel::Instant();
  opts.ingest.max_segment_rows = 100000;
  BlendHouse db(opts);
  ASSERT_TRUE(db.ExecuteSql("CREATE TABLE t (id Int64,"
                            " emb Array(Float32),"
                            " INDEX a emb TYPE HNSW('DIM=8'));")
                  .ok());
  auto data = MakeClusteredVectors(200, kDim, 4, 3);
  std::vector<storage::Row> rows;
  for (size_t i = 0; i < 200; ++i) {
    storage::Row row;
    row.values = {static_cast<int64_t>(i),
                  std::vector<float>(data.begin() + i * kDim,
                                     data.begin() + (i + 1) * kDim)};
    rows.push_back(std::move(row));
  }
  ASSERT_TRUE(db.Insert("t", std::move(rows)).ok());
  ASSERT_TRUE(db.Flush("t").ok());

  std::string vec = "[";
  for (size_t d = 0; d < kDim; ++d)
    vec += (d ? "," : "") + std::to_string(data[d]);
  vec += "]";
  auto result =
      db.Query("SELECT id FROM t ORDER BY L2Distance(emb, " + vec +
               ") LIMIT 5;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const sql::ExecStats& stats = result->stats;
  EXPECT_EQ(stats.segments_scanned, 1u);
  // The 20 ms remote index load dominates; it must show up as sim-I/O.
  EXPECT_GE(stats.sim_io_micros, 20000.0);
  double sum = stats.queue_wait_micros + stats.compute_micros +
               stats.sim_io_micros;
  EXPECT_GT(stats.exec_micros, 0.0);
  // Accounted time covers the execution minus scheduling/merge overhead;
  // generous bounds keep this robust on loaded CI machines.
  EXPECT_GE(sum, 0.7 * stats.exec_micros);
  EXPECT_LE(sum, 1.1 * stats.exec_micros);
}

}  // namespace
}  // namespace blendhouse::core
