#include <gtest/gtest.h>

#include "baselines/blendhouse_system.h"
#include "baselines/dataset.h"
#include "baselines/milvus_sim.h"
#include "baselines/pgvector_sim.h"
#include "common/timer.h"

namespace blendhouse::baselines {
namespace {

DatasetSpec TinySpec() {
  DatasetSpec spec;
  spec.name = "tiny";
  spec.n = 2000;
  spec.dim = 16;
  spec.clusters = 8;
  spec.num_queries = 8;
  return spec;
}

// ---------------------------------------------------------------------------
// Dataset generator
// ---------------------------------------------------------------------------

TEST(DatasetTest, DeterministicForSeed) {
  BenchDataset a = MakeDataset(TinySpec());
  BenchDataset b = MakeDataset(TinySpec());
  EXPECT_EQ(a.vectors, b.vectors);
  EXPECT_EQ(a.int_attr, b.int_attr);
  EXPECT_EQ(a.captions, b.captions);
  DatasetSpec other = TinySpec();
  other.seed = 99;
  BenchDataset c = MakeDataset(other);
  EXPECT_NE(a.vectors, c.vectors);
}

TEST(DatasetTest, ShapesAndRanges) {
  BenchDataset data = MakeDataset(TinySpec());
  EXPECT_EQ(data.vectors.size(), data.n * data.dim);
  EXPECT_EQ(data.int_attr.size(), data.n);
  EXPECT_EQ(data.captions.size(), data.n);
  EXPECT_EQ(data.queries.size(), data.num_queries * data.dim);
  for (int64_t a : data.int_attr) {
    ASSERT_GE(a, 0);
    ASSERT_LE(a, BenchDataset::kAttrMax);
  }
  for (double s : data.sim_score) {
    ASSERT_GE(s, 0.0);
    ASSERT_LE(s, 1.0);
  }
}

TEST(DatasetTest, GroundTruthRespectsFilter) {
  BenchDataset data = MakeDataset(TinySpec());
  auto [lo, hi] = AttrRangeForSelectivity(0.2);
  auto truth = GroundTruth(data, data.query(0), 10, true, lo, hi);
  for (auto id : truth) {
    int64_t a = data.int_attr[static_cast<size_t>(id)];
    EXPECT_GE(a, lo);
    EXPECT_LE(a, hi);
  }
  // Unfiltered search has at least as many candidates available.
  auto unfiltered = GroundTruth(data, data.query(0), 10);
  EXPECT_EQ(unfiltered.size(), 10u);
}

TEST(DatasetTest, AttrRangeSelectivityApproximatesTarget) {
  BenchDataset data = MakeDataset(TinySpec());
  for (double target : {0.01, 0.2, 0.5, 0.99}) {
    auto [lo, hi] = AttrRangeForSelectivity(target);
    size_t pass = 0;
    for (int64_t a : data.int_attr)
      if (a >= lo && a <= hi) ++pass;
    double actual = static_cast<double>(pass) / data.n;
    EXPECT_NEAR(actual, target, 0.05) << target;
  }
}

TEST(DatasetTest, RecallOfIsFraction) {
  std::vector<vecindex::IdType> truth = {1, 2, 3, 4};
  std::vector<vecindex::Neighbor> hits = {{1, 0}, {2, 0}, {9, 0}};
  EXPECT_DOUBLE_EQ(RecallOf(hits, truth), 0.5);
  EXPECT_DOUBLE_EQ(RecallOf({}, truth), 0.0);
  EXPECT_DOUBLE_EQ(RecallOf(hits, {}), 1.0);
}

// ---------------------------------------------------------------------------
// System behaviours shared across all three implementations
// ---------------------------------------------------------------------------

class SystemParamTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<VectorSystem> MakeSystem() {
    std::string which = GetParam();
    if (which == "milvus") {
      MilvusSimOptions opts;
      opts.simulate_latency = false;
      opts.segment_rows = 512;
      return std::make_unique<MilvusSim>(opts);
    }
    if (which == "pgvector") {
      PgvectorSimOptions opts;
      opts.per_query_overhead_micros = 0;
      return std::make_unique<PgvectorSim>(opts);
    }
    BlendHouseSystemOptions opts;
    opts.db = core::BlendHouseOptions::Fast();
    opts.db.ingest.max_segment_rows = 512;
    return std::make_unique<BlendHouseSystem>(opts);
  }
};

TEST_P(SystemParamTest, LoadThenSearchFindsSelf) {
  BenchDataset data = MakeDataset(TinySpec());
  auto system = MakeSystem();
  ASSERT_TRUE(system->Load(data).ok());
  // Query with a stored vector: its own id must come back first.
  SearchRequest req;
  req.query = data.vector(77);
  req.k = 5;
  req.ef_search = 64;
  auto hits = system->Search(req);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_FALSE(hits->empty());
  EXPECT_EQ(hits->front().id, 77);
}

TEST_P(SystemParamTest, FilteredSearchOnlyReturnsQualifyingIds) {
  BenchDataset data = MakeDataset(TinySpec());
  auto system = MakeSystem();
  ASSERT_TRUE(system->Load(data).ok());
  auto [lo, hi] = AttrRangeForSelectivity(0.3);
  SearchRequest req;
  req.query = data.query(1);
  req.k = 10;
  req.ef_search = 128;
  req.filtered = true;
  req.lo = lo;
  req.hi = hi;
  auto hits = system->Search(req);
  ASSERT_TRUE(hits.ok());
  EXPECT_FALSE(hits->empty());
  for (const auto& h : *hits) {
    int64_t a = data.int_attr[static_cast<size_t>(h.id)];
    EXPECT_GE(a, lo);
    EXPECT_LE(a, hi);
  }
}

TEST_P(SystemParamTest, ReasonableUnfilteredRecall) {
  BenchDataset data = MakeDataset(TinySpec());
  auto system = MakeSystem();
  ASSERT_TRUE(system->Load(data).ok());
  double total = 0;
  for (size_t q = 0; q < data.num_queries; ++q) {
    SearchRequest req;
    req.query = data.query(q);
    req.k = 10;
    req.ef_search = 128;
    auto hits = system->Search(req);
    ASSERT_TRUE(hits.ok());
    total += RecallOf(*hits, GroundTruth(data, data.query(q), 10));
  }
  EXPECT_GT(total / data.num_queries, 0.9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SystemParamTest,
                         ::testing::Values("blendhouse", "milvus",
                                           "pgvector"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---------------------------------------------------------------------------
// The behavioural contrasts the paper's comparisons rest on
// ---------------------------------------------------------------------------

TEST(PgvectorSimTest, RecallCollapsesOnSelectiveHybrid) {
  // pgvector's fixed-budget post-filter: with ~1% of rows passing, a single
  // ef_search pass cannot produce k qualifying rows — the paper's headline
  // failure mode (recall < 0.35 in Table VII).
  BenchDataset data = MakeDataset(TinySpec());
  PgvectorSimOptions opts;
  opts.per_query_overhead_micros = 0;
  PgvectorSim system(opts);
  ASSERT_TRUE(system.Load(data).ok());
  auto [lo, hi] = AttrRangeForSelectivity(0.01);
  double total = 0;
  for (size_t q = 0; q < data.num_queries; ++q) {
    SearchRequest req;
    req.query = data.query(q);
    req.k = 10;
    req.ef_search = 64;
    req.filtered = true;
    req.lo = lo;
    req.hi = hi;
    auto hits = system.Search(req);
    ASSERT_TRUE(hits.ok());
    total += RecallOf(*hits,
                      GroundTruth(data, data.query(q), 10, true, lo, hi));
  }
  EXPECT_LT(total / data.num_queries, 0.6);
}

TEST(MilvusSimTest, BruteForceHeuristicKeepsSelectiveRecall) {
  // Milvus's own heuristic switches to exact scans below the pass-fraction
  // threshold, so its selective-hybrid recall stays perfect.
  BenchDataset data = MakeDataset(TinySpec());
  MilvusSimOptions opts;
  opts.simulate_latency = false;
  MilvusSim system(opts);
  ASSERT_TRUE(system.Load(data).ok());
  auto [lo, hi] = AttrRangeForSelectivity(0.01);
  for (size_t q = 0; q < 4; ++q) {
    SearchRequest req;
    req.query = data.query(q);
    req.k = 10;
    req.ef_search = 64;
    req.filtered = true;
    req.lo = lo;
    req.hi = hi;
    auto hits = system.Search(req);
    ASSERT_TRUE(hits.ok());
    double recall = RecallOf(
        *hits, GroundTruth(data, data.query(q), 10, true, lo, hi));
    EXPECT_DOUBLE_EQ(recall, 1.0);
  }
}

TEST(MilvusSimTest, AttrPartitionsPruneWholeSegments) {
  BenchDataset data = MakeDataset(TinySpec());
  MilvusSimOptions opts;
  opts.simulate_latency = false;
  opts.attr_partitions = 4;
  opts.segment_rows = 256;
  MilvusSim system(opts);
  ASSERT_TRUE(system.Load(data).ok());
  // A narrow filter confined to one partition still returns correct rows.
  SearchRequest req;
  req.query = data.query(0);
  req.k = 5;
  req.ef_search = 128;
  req.filtered = true;
  req.lo = 0;
  req.hi = BenchDataset::kAttrMax / 8;  // inside partition 0
  auto hits = system.Search(req);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  auto truth = GroundTruth(data, data.query(0), 5, true, req.lo, req.hi);
  EXPECT_GT(RecallOf(*hits, truth), 0.8);
}

TEST(IngestStreamTest, ChargeSleepsProportionally) {
  IngestStreamModel model;
  model.bytes_per_micro = 10.0;  // 10 bytes/us
  common::Timer timer;
  model.Charge(50000);  // 5 ms
  EXPECT_GE(timer.ElapsedMicros(), 4000);
  IngestStreamModel off;  // disabled: no sleep
  common::Timer t2;
  off.Charge(1 << 30);
  EXPECT_LT(t2.ElapsedMicros(), 2000);
}

TEST(BlendHouseSystemTest, BuildsValidSql) {
  BlendHouseSystemOptions opts;
  opts.db = core::BlendHouseOptions::Fast();
  BlendHouseSystem system(opts);
  BenchDataset data = MakeDataset(TinySpec());
  ASSERT_TRUE(system.Load(data).ok());
  SearchRequest req;
  req.query = data.query(0);
  req.k = 7;
  req.ef_search = 32;
  req.filtered = true;
  req.lo = 10;
  req.hi = 20;
  std::string sql = system.BuildSearchSql(req);
  EXPECT_NE(sql.find("WHERE attr BETWEEN 10 AND 20"), std::string::npos);
  EXPECT_NE(sql.find("LIMIT 7"), std::string::npos);
  // The SQL must parse.
  EXPECT_TRUE(sql::ParseStatement(sql).ok());
}

TEST(BlendHouseSystemTest, ScalarPartitioningPrunesSegments) {
  BlendHouseSystemOptions opts;
  opts.db = core::BlendHouseOptions::Fast();
  opts.db.ingest.max_segment_rows = 256;
  opts.scalar_partition_buckets = 4;
  BlendHouseSystem system(opts);
  BenchDataset data = MakeDataset(TinySpec());
  ASSERT_TRUE(system.Load(data).ok());
  auto [lo, hi] = AttrRangeForSelectivity(0.2);
  auto result = system.db().Query(
      system.BuildSearchSql({data.query(0), 5, 64, true, lo, hi}));
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->stats.segments_after_scalar_prune,
            result->stats.segments_total);
}

}  // namespace
}  // namespace blendhouse::baselines
