// Query-history observability end to end (DESIGN.md §15): system.query_log
// exactly-once recording with per-query resource ledgers, fingerprint
// profiles, tail-based trace retention, and system.query_trace(<id>)
// rendering of historical traces.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/blendhouse.h"
#include "core/query_log.h"
#include "tests/test_util.h"

namespace blendhouse {
namespace {

constexpr size_t kDim = 8;

// ---------------------------------------------------------------------------
// QueryLog unit behaviour
// ---------------------------------------------------------------------------

TEST(QueryLogTest, HashIsStableFnv1a) {
  // FNV-1a 64 is a fixed algorithm: the hash of a given fingerprint must
  // never change across runs or builds (tests and tools address profiles
  // by hash).
  EXPECT_EQ(core::QueryLog::Hash(""), 14695981039346656037ull);
  EXPECT_EQ(core::QueryLog::Hash("a"), 12638187200555641996ull);
  EXPECT_EQ(core::QueryLog::Hash("SELECT ?"), core::QueryLog::Hash("SELECT ?"));
  EXPECT_NE(core::QueryLog::Hash("SELECT ?"), core::QueryLog::Hash("select ?"));
}

TEST(QueryLogTest, RingEvictsOldestPastCapacity) {
  core::QueryLog::Options opts;
  opts.max_records = 4;
  core::QueryLog log(opts);
  for (int i = 0; i < 10; ++i) {
    core::QueryLogRecord rec;
    rec.sql = "q" + std::to_string(i);
    rec.fingerprint = "q?";
    rec.fingerprint_hash = core::QueryLog::Hash(rec.fingerprint);
    rec.latency_micros = 100;
    log.Append(std::move(rec));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_appended(), 10u);
  auto records = log.Records();
  ASSERT_EQ(records.size(), 4u);
  // query_ids are monotonic and the survivors are the newest four.
  EXPECT_EQ(records.front().query_id, 7u);
  EXPECT_EQ(records.back().query_id, 10u);
  // Profiles aggregate over everything ever appended, not just the ring.
  auto profiles = log.Profiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].count, 10u);
}

TEST(QueryLogTest, SlowThresholdNeedsMinSamplesThenTracksP99) {
  core::QueryLog::Options opts;
  opts.min_profile_samples = 8;
  core::QueryLog log(opts);
  uint64_t hash = core::QueryLog::Hash("shape");
  // Cold profile: no threshold — a handful of samples' p99 is noise.
  EXPECT_EQ(log.SlowThresholdMicros(hash), 0.0);
  for (int i = 0; i < 7; ++i) {
    core::QueryLogRecord rec;
    rec.fingerprint = "shape";
    rec.fingerprint_hash = hash;
    rec.latency_micros = 500;
    log.Append(std::move(rec));
  }
  EXPECT_EQ(log.SlowThresholdMicros(hash), 0.0);  // 7 < 8
  {
    core::QueryLogRecord rec;
    rec.fingerprint = "shape";
    rec.fingerprint_hash = hash;
    rec.latency_micros = 500;
    log.Append(std::move(rec));
  }
  // Warm profile: the rolling p99 is a usable threshold near the samples.
  double threshold = log.SlowThresholdMicros(hash);
  EXPECT_GT(threshold, 0.0);
  EXPECT_LT(threshold, 10000.0);
  // Unknown fingerprints never get a threshold.
  EXPECT_EQ(log.SlowThresholdMicros(core::QueryLog::Hash("other")), 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end through BlendHouse
// ---------------------------------------------------------------------------

class QueryLogE2E : public ::testing::Test {
 protected:
  void Start(core::BlendHouseOptions opts) {
    opts.ingest.max_segment_rows = 100;  // several segments per flush
    db_ = std::make_unique<core::BlendHouse>(opts);
    auto created = db_->ExecuteSql(
        "CREATE TABLE items (id Int64, attr Int64, emb Array(Float32),"
        " INDEX ann emb TYPE HNSW('DIM=8','M=8'));");
    ASSERT_TRUE(created.ok()) << created.status().ToString();
  }

  void Ingest(size_t n) {
    data_ = test::MakeClusteredVectors(n, kDim, 6, 7);
    std::vector<storage::Row> rows;
    for (size_t i = 0; i < n; ++i) {
      storage::Row row;
      row.values = {static_cast<int64_t>(i), static_cast<int64_t>(i % 100),
                    std::vector<float>(data_.begin() + i * kDim,
                                       data_.begin() + (i + 1) * kDim)};
      rows.push_back(std::move(row));
    }
    ASSERT_TRUE(db_->Insert("items", std::move(rows)).ok());
    ASSERT_TRUE(db_->Flush("items").ok());
  }

  std::string VecLiteral(size_t qrow) {
    const float* v = data_.data() + qrow * kDim;
    std::string s = "[";
    for (size_t d = 0; d < kDim; ++d) {
      if (d > 0) s += ",";
      s += std::to_string(v[d]);
    }
    return s + "]";
  }

  std::string TopKSql(size_t qrow, int k, int attr_below) {
    return "SELECT id, dist FROM items WHERE attr < " +
           std::to_string(attr_below) + " ORDER BY L2Distance(emb, " +
           VecLiteral(qrow) + ") AS dist LIMIT " + std::to_string(k) + ";";
  }

  std::unique_ptr<core::BlendHouse> db_;
  std::vector<float> data_;
};

TEST_F(QueryLogE2E, EveryFinishedQueryLoggedExactlyOnce) {
  Start(core::BlendHouseOptions::Fast());
  Ingest(300);
  ASSERT_TRUE(db_->Query(TopKSql(0, 5, 50)).ok());
  ASSERT_TRUE(db_->Query(TopKSql(1, 5, 60)).ok());
  ASSERT_TRUE(db_->Query("SELECT id FROM items WHERE attr < 3;").ok());
  EXPECT_FALSE(db_->Query("SELECT nonexistent FROM items ORDER BY "
                          "L2Distance(emb, [1,2,3,4,5,6,7,8]) LIMIT 3;")
                   .ok());
  EXPECT_EQ(db_->query_log().total_appended(), 4u);

  auto result = db_->Query("SELECT * FROM system.query_log;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 4u);
  // query_ids are unique; statuses land as recorded.
  std::set<int64_t> ids;
  size_t errors = 0;
  size_t id_col = 0, status_col = 0;
  for (size_t c = 0; c < result->column_names.size(); ++c) {
    if (result->column_names[c] == "query_id") id_col = c;
    if (result->column_names[c] == "status") status_col = c;
  }
  for (const auto& row : result->rows) {
    ids.insert(std::get<int64_t>(row.values[id_col]));
    if (std::get<std::string>(row.values[status_col]) == "error") ++errors;
  }
  EXPECT_EQ(ids.size(), 4u);
  EXPECT_EQ(errors, 1u);

  // Reading history must not grow history: system.* queries are not logged.
  ASSERT_TRUE(db_->Query("SELECT * FROM system.query_log;").ok());
  ASSERT_TRUE(db_->Query("SELECT * FROM system.metrics;").ok());
  EXPECT_EQ(db_->query_log().total_appended(), 4u);
}

TEST_F(QueryLogE2E, LedgerCapturesQueryResources) {
  Start(core::BlendHouseOptions::Fast());
  Ingest(400);
  ASSERT_TRUE(db_->Query(TopKSql(2, 5, 50)).ok());
  auto records = db_->query_log().Records();
  ASSERT_EQ(records.size(), 1u);
  const core::QueryLogRecord& rec = records[0];
  EXPECT_EQ(rec.type, "ann");
  EXPECT_EQ(rec.status, "ok");
  EXPECT_GT(rec.latency_micros, 0.0);
  EXPECT_GT(rec.plan_micros, 0.0);
  EXPECT_GT(rec.exec_micros, 0.0);

  const common::QueryLedger& l = rec.ledger;
  EXPECT_GT(l.rows_scanned, 0u);
  EXPECT_GT(l.total_distance_comps(), 0u);
  EXPECT_GT(l.segments_scanned, 0u);
  EXPECT_GE(l.workers_fanout, 1u);
  // The latency breakdown is populated and self-consistent: components are
  // non-negative and the total accounts for real time (compute can exceed
  // wall under parallel segment scans, but never all three being zero).
  EXPECT_GT(l.queue_wait_micros + l.compute_micros + l.sim_io_micros, 0.0);

  // The scalar path counts scanned rows too.
  ASSERT_TRUE(db_->Query("SELECT id FROM items WHERE attr < 10;").ok());
  records = db_->query_log().Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].type, "scalar");
  EXPECT_GT(records[1].ledger.rows_scanned, 0u);
}

TEST_F(QueryLogE2E, IdenticalShapeQueriesShareOneFingerprint) {
  Start(core::BlendHouseOptions::Fast());
  Ingest(300);
  // Same shape, different literals: attr bound, query vector, and LIMIT all
  // differ, but the parameterized signature is identical.
  ASSERT_TRUE(db_->Query(TopKSql(0, 5, 50)).ok());
  ASSERT_TRUE(db_->Query(TopKSql(1, 7, 30)).ok());
  ASSERT_TRUE(db_->Query(TopKSql(2, 3, 80)).ok());
  // A different shape (no WHERE) gets its own fingerprint.
  ASSERT_TRUE(db_->Query("SELECT id, dist FROM items ORDER BY L2Distance("
                         "emb, " + VecLiteral(0) + ") AS dist LIMIT 5;")
                  .ok());

  auto records = db_->query_log().Records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].fingerprint_hash, records[1].fingerprint_hash);
  EXPECT_EQ(records[0].fingerprint_hash, records[2].fingerprint_hash);
  EXPECT_NE(records[0].fingerprint_hash, records[3].fingerprint_hash);
  EXPECT_EQ(records[0].fingerprint, records[1].fingerprint);

  auto profiles = db_->Query("SELECT fingerprint, count FROM "
                             "system.query_profile;");
  ASSERT_TRUE(profiles.ok()) << profiles.status().ToString();
  ASSERT_EQ(profiles->rows.size(), 2u);
  std::vector<int64_t> counts;
  for (const auto& row : profiles->rows)
    counts.push_back(std::get<int64_t>(row.values[1]));
  std::sort(counts.begin(), counts.end());
  EXPECT_EQ(counts, (std::vector<int64_t>{1, 3}));
}

TEST_F(QueryLogE2E, SystemQueryLogSupportsPushdownAndProjection) {
  Start(core::BlendHouseOptions::Fast());
  Ingest(300);
  ASSERT_TRUE(db_->Query(TopKSql(0, 5, 50)).ok());
  EXPECT_FALSE(db_->Query("SELECT nonexistent FROM items ORDER BY "
                          "L2Distance(emb, [1,2,3,4,5,6,7,8]) LIMIT 3;")
                   .ok());
  ASSERT_TRUE(db_->Query(TopKSql(1, 5, 50)).ok());

  // Predicate pushdown through the bitmap engine + projection.
  auto errors = db_->Query(
      "SELECT query_id, type, status FROM system.query_log "
      "WHERE status = 'error';");
  ASSERT_TRUE(errors.ok()) << errors.status().ToString();
  EXPECT_EQ(errors->column_names,
            (std::vector<std::string>{"query_id", "type", "status"}));
  ASSERT_EQ(errors->rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(errors->rows[0].values[0]), 2);
  EXPECT_EQ(std::get<std::string>(errors->rows[0].values[2]), "error");

  // Numeric predicates work on ledger columns.
  auto busy = db_->Query(
      "SELECT query_id FROM system.query_log WHERE rows_scanned > 0;");
  ASSERT_TRUE(busy.ok()) << busy.status().ToString();
  EXPECT_EQ(busy->rows.size(), 2u);

  // LIMIT/OFFSET paginate the log like any scalar scan.
  auto page = db_->Query(
      "SELECT query_id FROM system.query_log LIMIT 2 OFFSET 1;");
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  ASSERT_EQ(page->rows.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(page->rows[0].values[0]), 2);
}

TEST_F(QueryLogE2E, QueryTraceRendersRetainedHistoricalTrace) {
  core::BlendHouseOptions opts = core::BlendHouseOptions::Fast();
  opts.trace.sample_rate = 1.0;
  Start(opts);
  Ingest(300);
  ASSERT_TRUE(db_->Query(TopKSql(0, 5, 50)).ok());
  auto records = db_->query_log().Records();
  ASSERT_EQ(records.size(), 1u);
  ASSERT_GT(records[0].trace_id, 0u);
  EXPECT_EQ(records[0].trace_retention, "sampled");

  auto rendered = db_->Query("SELECT * FROM system.query_trace(" +
                             std::to_string(records[0].trace_id) + ");");
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  ASSERT_EQ(rendered->column_names, (std::vector<std::string>{"explain"}));
  std::string text;
  for (const auto& row : rendered->rows)
    text += std::get<std::string>(row.values[0]) + "\n";
  EXPECT_NE(text.find("retention=sampled"), std::string::npos);
  EXPECT_NE(text.find("fingerprint="), std::string::npos);
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("segment_scan"), std::string::npos);

  // Unknown and unretained ids explain themselves.
  auto missing = db_->Query("SELECT * FROM system.query_trace(999999);");
  EXPECT_FALSE(missing.ok());
  auto no_arg = db_->Query("SELECT * FROM system.query_trace;");
  EXPECT_FALSE(no_arg.ok());
}

TEST_F(QueryLogE2E, SlowQueryThresholdFloorRetainsSlowTraces) {
  core::BlendHouseOptions opts = core::BlendHouseOptions::Fast();
  opts.trace.sample_rate = 0.0;  // only the tail rules can retain
  Start(opts);
  Ingest(300);
  // 1us floor: every real query qualifies as slow.
  ASSERT_TRUE(db_->ExecuteSql("SET slow_query_threshold_ms = 0.001;").ok());
  ASSERT_TRUE(db_->Query(TopKSql(0, 5, 50)).ok());
  EXPECT_EQ(db_->trace_sink().retained_slow(), 1u);
  auto records = db_->query_log().Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].trace_retention, "slow");
  // The retained-slow trace is addressable even though sampling is off.
  auto rendered = db_->Query("SELECT * FROM system.query_trace(" +
                             std::to_string(records[0].trace_id) + ");");
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();

  // Raising the floor far above real latency stops retention.
  ASSERT_TRUE(db_->ExecuteSql("SET slow_query_threshold_ms = 60000;").ok());
  ASSERT_TRUE(db_->Query(TopKSql(1, 5, 50)).ok());
  EXPECT_EQ(db_->trace_sink().retained_slow(), 1u);
  EXPECT_EQ(db_->trace_sink().sample_dropped(), 1u);
}

TEST_F(QueryLogE2E, ErrorTracesAlwaysRetained) {
  core::BlendHouseOptions opts = core::BlendHouseOptions::Fast();
  opts.trace.sample_rate = 0.0;
  Start(opts);
  Ingest(300);
  EXPECT_FALSE(db_->Query("SELECT nonexistent FROM items ORDER BY "
                          "L2Distance(emb, [1,2,3,4,5,6,7,8]) LIMIT 3;")
                   .ok());
  EXPECT_EQ(db_->trace_sink().retained_error(), 1u);
  auto records = db_->query_log().Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].status, "error");
  EXPECT_EQ(records[0].trace_retention, "error");
  EXPECT_FALSE(records[0].error.empty());
  EXPECT_TRUE(db_->trace_sink().FindTrace(records[0].trace_id).has_value());
}

TEST_F(QueryLogE2E, RetentionTalliesReconcile) {
  core::BlendHouseOptions opts = core::BlendHouseOptions::Fast();
  opts.trace.sample_rate = 0.0;
  Start(opts);
  Ingest(300);
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(db_->Query(TopKSql(static_cast<size_t>(i), 5, 50)).ok());
  EXPECT_FALSE(db_->Query("SELECT nonexistent FROM items ORDER BY "
                          "L2Distance(emb, [1,2,3,4,5,6,7,8]) LIMIT 3;")
                   .ok());
  auto& sink = db_->trace_sink();
  // Every finished query got exactly one verdict, and the verdicts add up.
  EXPECT_EQ(sink.offered(), 11u);
  EXPECT_EQ(sink.retained_error() + sink.retained_slow() +
                sink.retained_sampled() + sink.sample_dropped(),
            sink.offered());
  EXPECT_EQ(sink.offered(), db_->query_log().total_appended());
}

}  // namespace
}  // namespace blendhouse
