#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cluster/consistent_hash.h"
#include "cluster/index_cache.h"
#include "cluster/scheduler.h"
#include "cluster/virtual_warehouse.h"
#include "cluster/worker.h"
#include "common/lru_cache.h"
#include "storage/lsm_engine.h"
#include "tests/test_util.h"

namespace blendhouse::cluster {
namespace {

using common::LruCache;
using test::MakeClusteredVectors;

// ---------------------------------------------------------------------------
// Multi-probe consistent hashing
// ---------------------------------------------------------------------------

TEST(ConsistentHashTest, EmptyRingReturnsEmpty) {
  ConsistentHashRing ring;
  EXPECT_EQ(ring.GetNode("key"), "");
}

TEST(ConsistentHashTest, SingleNodeOwnsEverything) {
  ConsistentHashRing ring;
  ring.AddNode("w0");
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(ring.GetNode("seg_" + std::to_string(i)), "w0");
}

TEST(ConsistentHashTest, DeterministicAssignment) {
  ConsistentHashRing a, b;
  for (const char* n : {"w0", "w1", "w2"}) {
    a.AddNode(n);
    b.AddNode(n);
  }
  for (int i = 0; i < 100; ++i) {
    std::string key = "seg_" + std::to_string(i);
    EXPECT_EQ(a.GetNode(key), b.GetNode(key));
  }
}

TEST(ConsistentHashTest, MultiProbeBalancesBetterThanSingleProbe) {
  // The defining property of multi-probe CH: with k probes the load spread
  // tightens substantially vs classic 1-probe placement.
  auto spread = [](size_t probes) {
    ConsistentHashRing ring(probes);
    for (int n = 0; n < 8; ++n) ring.AddNode("w" + std::to_string(n));
    std::map<std::string, int> counts;
    for (int i = 0; i < 4000; ++i)
      counts[ring.GetNode("segment_" + std::to_string(i))]++;
    int mn = 1 << 30, mx = 0;
    for (auto& [_, c] : counts) {
      mn = std::min(mn, c);
      mx = std::max(mx, c);
    }
    return static_cast<double>(mx) / std::max(1, mn);
  };
  EXPECT_LT(spread(21), spread(1));
  EXPECT_LT(spread(21), 2.5);  // well balanced at 21 probes
}

TEST(ConsistentHashTest, MinimalRedistributionOnScaling) {
  ConsistentHashRing ring;
  for (int n = 0; n < 6; ++n) ring.AddNode("w" + std::to_string(n));
  std::map<std::string, std::string> before;
  for (int i = 0; i < 2000; ++i) {
    std::string key = "seg_" + std::to_string(i);
    before[key] = ring.GetNode(key);
  }
  ring.AddNode("w6");
  size_t moved = 0;
  for (auto& [key, owner] : before)
    if (ring.GetNode(key) != owner) ++moved;
  // Ideal fraction is 1/7 ~ 14%; anything far below a rehash-everything 86%
  // demonstrates the property. Allow generous slack for multi-probe skew.
  EXPECT_LT(static_cast<double>(moved) / before.size(), 0.35);
  EXPECT_GT(moved, 0u);

  // Moved keys all moved TO the new node (clockwise-closest semantics).
  for (auto& [key, owner] : before) {
    std::string now = ring.GetNode(key);
    if (now != owner) {
      EXPECT_EQ(now, "w6") << key;
    }
  }
}

TEST(ConsistentHashTest, RemoveNodeOnlyMovesItsKeys) {
  ConsistentHashRing ring;
  for (int n = 0; n < 5; ++n) ring.AddNode("w" + std::to_string(n));
  std::map<std::string, std::string> before;
  for (int i = 0; i < 1000; ++i) {
    std::string key = "k" + std::to_string(i);
    before[key] = ring.GetNode(key);
  }
  ring.RemoveNode("w2");
  for (auto& [key, owner] : before) {
    if (owner != "w2")
      EXPECT_EQ(ring.GetNode(key), owner) << key;  // untouched
    else
      EXPECT_NE(ring.GetNode(key), "w2");
  }
}

// ---------------------------------------------------------------------------
// LruCache
// ---------------------------------------------------------------------------

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int> cache(/*capacity_bytes=*/30);
  cache.Put("a", 1, 10);
  cache.Put("b", 2, 10);
  cache.Put("c", 3, 10);
  ASSERT_TRUE(cache.Get("a").has_value());  // a now most recent
  cache.Put("d", 4, 10);                    // evicts b (LRU)
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_TRUE(cache.Get("d").has_value());
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheTest, OversizedEntryNotCached) {
  LruCache<int> cache(10);
  cache.Put("big", 1, 100);
  EXPECT_FALSE(cache.Get("big").has_value());
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCacheTest, PeekDoesNotTouchOrder) {
  LruCache<int> cache(20);
  cache.Put("a", 1, 10);
  cache.Put("b", 2, 10);
  ASSERT_TRUE(cache.Peek("a").has_value());  // no LRU bump
  cache.Put("c", 3, 10);                     // evicts a despite the peek
  EXPECT_FALSE(cache.Peek("a").has_value());
}

TEST(LruCacheTest, UpdateReplacesAndRecharges) {
  LruCache<int> cache(25);
  cache.Put("a", 1, 10);
  cache.Put("a", 2, 20);
  EXPECT_EQ(*cache.Get("a"), 2);
  EXPECT_EQ(cache.used_bytes(), 20u);
}

// ---------------------------------------------------------------------------
// Hierarchical index cache & worker fixtures
// ---------------------------------------------------------------------------

class ClusterFixture : public ::testing::Test {
 protected:
  static constexpr size_t kDim = 8;

  ClusterFixture()
      : store_(storage::StorageCostModel::Instant()),
        rpc_(RpcFabric::CostModel{0, 1e12, false}),
        pool_(2) {
    schema_.table_name = "t";
    schema_.columns = {{"id", storage::ColumnType::kInt64},
                       {"emb", storage::ColumnType::kFloatVector}};
    vecindex::IndexSpec spec;
    spec.type = "HNSW";
    spec.dim = kDim;
    schema_.index_spec = spec;
    schema_.vector_column = 1;
    storage::IngestOptions ingest;
    ingest.max_segment_rows = 100;  // several segments per flush
    engine_ = std::make_unique<storage::LsmEngine>(schema_, &store_, &pool_,
                                                   ingest);
  }

  void IngestRows(size_t n) {
    auto data = MakeClusteredVectors(n, kDim, 4, 9);
    std::vector<storage::Row> rows;
    for (size_t i = 0; i < n; ++i) {
      storage::Row row;
      row.values = {static_cast<int64_t>(i),
                    std::vector<float>(data.begin() + i * kDim,
                                       data.begin() + (i + 1) * kDim)};
      rows.push_back(std::move(row));
    }
    ASSERT_TRUE(engine_->Insert(std::move(rows)).ok());
    ASSERT_TRUE(engine_->Flush().ok());
    query_.assign(data.begin(), data.begin() + kDim);
  }

  WorkerOptions FastWorkerOptions() {
    WorkerOptions o;
    o.cache.disk_cost = storage::StorageCostModel::Instant();
    return o;
  }

  storage::ObjectStore store_;
  RpcFabric rpc_;
  common::ThreadPool pool_;
  storage::TableSchema schema_;
  std::unique_ptr<storage::LsmEngine> engine_;
  std::vector<float> query_;
};

TEST_F(ClusterFixture, IndexCacheTiersProgress) {
  IngestRows(200);
  auto meta = engine_->Snapshot().segments[0];
  std::string key = storage::SegmentKeys::Index("t", meta.segment_id);

  HierarchicalIndexCache::Options opts;
  opts.disk_cost = storage::StorageCostModel::Instant();
  HierarchicalIndexCache cache(&store_, opts);

  auto first = cache.GetOrLoad(key, *schema_.index_spec);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->outcome, CacheOutcome::kRemoteLoad);

  auto second = cache.GetOrLoad(key, *schema_.index_spec);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->outcome, CacheOutcome::kMemoryHit);

  // Evict only the memory tier by clearing and reinserting disk bytes:
  // simulate by a fresh cache sharing no memory but a warm disk via the
  // same remote (disk tier is internal, so instead drop memory via a tiny
  // memory budget).
  HierarchicalIndexCache::Options small = opts;
  small.memory_bytes = 1;  // nothing fits in memory
  HierarchicalIndexCache disk_only(&store_, small);
  ASSERT_TRUE(disk_only.GetOrLoad(key, *schema_.index_spec).ok());
  auto again = disk_only.GetOrLoad(key, *schema_.index_spec);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->outcome, CacheOutcome::kDiskHit);
}

TEST_F(ClusterFixture, IndexCacheMetadataSurvivesDataChurn) {
  IngestRows(200);
  auto meta = engine_->Snapshot().segments[0];
  std::string key = storage::SegmentKeys::Index("t", meta.segment_id);
  HierarchicalIndexCache::Options opts;
  opts.disk_cost = storage::StorageCostModel::Instant();
  HierarchicalIndexCache cache(&store_, opts);
  ASSERT_TRUE(cache.GetOrLoad(key, *schema_.index_spec).ok());
  auto info = cache.GetMeta(key);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->index_type, "HNSW");
  EXPECT_EQ(info->num_vectors, 100u);  // max_segment_rows splits 200 rows
  EXPECT_GT(info->memory_bytes, 0u);
}

TEST_F(ClusterFixture, WorkerAcquireAndSearch) {
  IngestRows(300);
  Worker worker("w0", &store_, &rpc_, FastWorkerOptions());
  auto meta = engine_->Snapshot().segments[0];
  // A cold worker with no peers and force_local_load blocks on the remote
  // store (the Manu-style wait-for-load path).
  AcquireOptions force_load;
  force_load.force_local_load = true;
  auto acquired = worker.AcquireIndex(schema_, meta, force_load);
  ASSERT_TRUE(acquired.ok());
  EXPECT_EQ(acquired->outcome, CacheOutcome::kRemoteLoad);

  vecindex::SearchParams params;
  params.k = 5;
  auto hits = acquired->index->SearchWithFilter(query_.data(), params);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 5u);

  // Second acquire is a memory hit.
  auto warm = worker.AcquireIndex(schema_, meta);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->outcome, CacheOutcome::kMemoryHit);
}

TEST_F(ClusterFixture, StreamSearchDeliversSortedBatches) {
  IngestRows(300);
  Worker worker("w0", &store_, &rpc_, FastWorkerOptions());
  auto meta = engine_->Snapshot().segments[0];
  AcquireOptions force_load;
  force_load.force_local_load = true;

  vecindex::SearchParams params;
  params.k = 10;
  std::vector<vecindex::Neighbor> streamed;
  uint64_t rpc_before = rpc_.bytes();
  auto stats = worker.StreamSearch(
      schema_, meta, query_.data(), params, /*batch_size=*/16,
      [&](const std::vector<vecindex::Neighbor>& batch) {
        EXPECT_TRUE(vecindex::IsSortedBatch(batch));
        EXPECT_LE(batch.size(), 16u);
        streamed.insert(streamed.end(), batch.begin(), batch.end());
        return streamed.size() < 64;  // consumer stops after ~4 batches
      },
      force_load);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(streamed.size(), 64u);
  EXPECT_LT(streamed.size(), 100u);  // early stop: segment not drained
  EXPECT_GE(stats->batches, 4u);
  EXPECT_GT(stats->rows_visited, 0u);
  // Every served batch was charged to the fabric.
  EXPECT_GT(rpc_.bytes(), rpc_before);
  // No duplicate ids across the streamed prefix.
  std::set<vecindex::IdType> ids;
  for (const auto& nb : streamed) EXPECT_TRUE(ids.insert(nb.id).second);
}

TEST_F(ClusterFixture, StreamSearchRejectsZeroBatch) {
  IngestRows(100);
  Worker worker("w0", &store_, &rpc_, FastWorkerOptions());
  auto meta = engine_->Snapshot().segments[0];
  vecindex::SearchParams params;
  params.k = 5;
  auto stats = worker.StreamSearch(
      schema_, meta, query_.data(), params, /*batch_size=*/0,
      [](const std::vector<vecindex::Neighbor>&) { return true; });
  EXPECT_FALSE(stats.ok());
}

TEST_F(ClusterFixture, ColdWorkerDefaultsToBruteForceFallback) {
  // The paper's default on an unservable cache miss: answer the query NOW
  // with exact distances instead of blocking on an index load.
  IngestRows(150);
  Worker worker("w0", &store_, &rpc_, FastWorkerOptions());
  auto meta = engine_->Snapshot().segments[0];
  AcquireOptions opts;
  opts.background_load_on_fallback = false;
  auto acquired = worker.AcquireIndex(schema_, meta, opts);
  ASSERT_TRUE(acquired.ok());
  EXPECT_EQ(acquired->outcome, CacheOutcome::kBruteForce);
  EXPECT_EQ(acquired->index->Type(), "FLAT");
}

TEST_F(ClusterFixture, WorkerBruteForceWhenNoIndexAnywhere) {
  IngestRows(100);
  auto meta = engine_->Snapshot().segments[0];
  // Wipe the persisted index: only raw data remains.
  ASSERT_TRUE(store_.Delete(storage::SegmentKeys::Index("t", meta.segment_id))
                  .ok());
  Worker worker("w0", &store_, &rpc_, FastWorkerOptions());
  AcquireOptions opts;
  opts.background_load_on_fallback = false;
  auto acquired = worker.AcquireIndex(schema_, meta, opts);
  ASSERT_TRUE(acquired.ok());
  EXPECT_EQ(acquired->outcome, CacheOutcome::kBruteForce);
  vecindex::SearchParams params;
  params.k = 3;
  auto hits = acquired->index->SearchWithFilter(query_.data(), params);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 3u);
}

TEST_F(ClusterFixture, VectorSearchServingViaPreviousOwner) {
  IngestRows(1000);  // ~10 segments: some will move to the new worker
  VirtualWarehouse vw("vw", 2, &store_, &rpc_, FastWorkerOptions());
  auto snapshot = engine_->Snapshot();
  // Warm all current owners.
  ASSERT_TRUE(PreloadIndexes(vw, schema_, snapshot).ok());

  // Scale up; some segments now map to the cold new worker.
  Worker* fresh = vw.AddWorker();
  const storage::SegmentMeta* moved = nullptr;
  for (const auto& meta : snapshot.segments) {
    std::string key = Scheduler::PlacementKey("t", meta);
    if (vw.OwnerIdOf(key) == fresh->id()) {
      moved = &meta;
      break;
    }
  }
  if (moved == nullptr) GTEST_SKIP() << "no segment moved to the new worker";

  AcquireOptions opts;
  opts.background_load_on_fallback = false;
  auto acquired = fresh->AcquireIndex(schema_, *moved, opts);
  ASSERT_TRUE(acquired.ok());
  // The previous owner holds the index hot: served remotely, not brute
  // forced, and not a blocking remote load.
  EXPECT_EQ(acquired->outcome, CacheOutcome::kRemoteServing);
  vecindex::SearchParams params;
  params.k = 5;
  auto hits = acquired->index->SearchWithFilter(query_.data(), params);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 5u);
}

TEST_F(ClusterFixture, PreloadWarmsExactlyTheOwners) {
  IngestRows(400);
  VirtualWarehouse vw("vw", 3, &store_, &rpc_, FastWorkerOptions());
  auto snapshot = engine_->Snapshot();
  ASSERT_TRUE(PreloadIndexes(vw, schema_, snapshot).ok());
  for (const auto& meta : snapshot.segments) {
    std::string key = Scheduler::PlacementKey("t", meta);
    Worker* owner = vw.OwnerOf(key);
    ASSERT_NE(owner, nullptr);
    EXPECT_NE(owner->PeekHotIndex(key), nullptr) << meta.segment_id;
  }
}

TEST_F(ClusterFixture, SchedulerScalarAndSemanticPruning) {
  std::vector<storage::SegmentMeta> metas(4);
  for (int i = 0; i < 4; ++i) {
    metas[i].segment_id = "s" + std::to_string(i);
    metas[i].semantic_bucket = i;
    metas[i].numeric_ranges["x"] = {i * 10.0, i * 10.0 + 9.0};
  }
  // Scalar: keep segments whose x-range intersects [15, 25].
  auto kept = Scheduler::PruneScalar(metas, [](const storage::SegmentMeta& m) {
    auto [lo, hi] = m.numeric_ranges.at("x");
    return !(hi < 15.0 || lo > 25.0);
  });
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].segment_id, "s1");
  EXPECT_EQ(kept[1].segment_id, "s2");

  // Semantic: four well-separated centroids; probing 1 bucket keeps only
  // the nearest one.
  storage::SemanticPartitioner part;
  std::vector<float> centers = {0, 0, 10, 0, 0, 10, 10, 10};
  ASSERT_TRUE(part.Train(centers.data(), 4, 2, 4).ok());
  for (int i = 0; i < 4; ++i)
    metas[i].semantic_bucket = part.AssignBucket(centers.data() + i * 2);
  float query[2] = {0.5f, 0.2f};
  auto sem = Scheduler::PruneSemantic(metas, part, query, 1);
  ASSERT_EQ(sem.size(), 1u);
  EXPECT_EQ(sem[0].semantic_bucket, part.AssignBucket(query));
}

TEST_F(ClusterFixture, VwScaleDownRemovesWorker) {
  VirtualWarehouse vw("vw", 3, &store_, &rpc_, FastWorkerOptions());
  auto workers = vw.workers();
  ASSERT_EQ(workers.size(), 3u);
  ASSERT_TRUE(vw.RemoveWorker(workers[0]->id()).ok());
  EXPECT_EQ(vw.num_workers(), 2u);
  EXPECT_FALSE(vw.RemoveWorker("nonexistent").ok());
}

TEST_F(ClusterFixture, RpcFabricCountsCalls) {
  RpcFabric fabric(RpcFabric::CostModel{0, 1e12, false});
  fabric.Charge(100);
  fabric.Charge(50);
  EXPECT_EQ(fabric.calls(), 2u);
  EXPECT_EQ(fabric.bytes(), 150u);
}

}  // namespace
}  // namespace blendhouse::cluster
