// Shard-per-core execution engine tests (DESIGN.md §12): per-worker run
// queues with randomized work stealing in ThreadPool, sharded deadline heaps
// with owner-serviced timers in TaskScheduler, the `scheduler_sharding`
// construction-time toggle, and the shared-rank no-nesting discipline of the
// shard mutex families. The stress tests are written to be meaningful under
// TSan: racing Submit/Wait and Schedule/Drain across threads while stealing
// rebalances.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/sharding.h"
#include "common/task_scheduler.h"
#include "common/threadpool.h"

namespace {

namespace common = blendhouse::common;
namespace lockrank = blendhouse::common::lockrank;

#if defined(BLENDHOUSE_LOCK_RANK_CHECKS)
constexpr bool kChecksCompiledIn = true;
#else
constexpr bool kChecksCompiledIn = false;
#endif

#define SKIP_IF_CHECKS_COMPILED_OUT()                                     \
  do {                                                                    \
    if (!kChecksCompiledIn)                                               \
      GTEST_SKIP() << "BLENDHOUSE_LOCK_RANK_CHECKS not compiled in "      \
                      "(release build); rank checking is zero-cost here"; \
  } while (0)

// ---------------------------------------------------------------------------
// Topology toggle
// ---------------------------------------------------------------------------

TEST(SchedulerShardingTest, ShardTopologyFollowsToggle) {
  {
    common::ScopedSchedulerSharding on(true);
    common::ThreadPool pool(4);
    common::TaskScheduler sched(3);
    EXPECT_TRUE(pool.sharded());
    EXPECT_EQ(pool.num_shards(), 4u);
    EXPECT_TRUE(sched.sharded());
    EXPECT_EQ(sched.num_shards(), 3u);
  }
  {
    common::ScopedSchedulerSharding off(false);
    common::ThreadPool pool(4);
    common::TaskScheduler sched(3);
    EXPECT_FALSE(pool.sharded());
    EXPECT_EQ(pool.num_shards(), 1u);
    EXPECT_FALSE(sched.sharded());
    EXPECT_EQ(sched.num_shards(), 1u);
  }
  // A 1-thread pool has nobody to steal from: single-queue regardless.
  common::ScopedSchedulerSharding on(true);
  common::ThreadPool single(1);
  EXPECT_FALSE(single.sharded());
  EXPECT_EQ(single.num_shards(), 1u);
}

TEST(SchedulerShardingTest, SingleQueueModePreservesFifoOrderAndNeverSteals) {
  common::ScopedSchedulerSharding off(false);
  common::ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 16; ++i)
    pool.Submit([&order, i] { order.push_back(i); });
  pool.Wait();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(pool.steals_total(), 0u);
}

TEST(SchedulerShardingTest, AffinityPinsSchedulerShard) {
  common::ScopedSchedulerSharding on(true);
  common::TaskScheduler sched(4);
  ASSERT_EQ(sched.num_shards(), 4u);
  std::atomic<int> ran{0};
  auto bump = [&ran] { ran.fetch_add(1); };
  // An explicit affinity lands on affinity % num_shards, for both queues.
  EXPECT_EQ(sched.Schedule(bump, 7), 7u % 4u);
  EXPECT_EQ(sched.Schedule(bump, 42), 42u % 4u);
  EXPECT_EQ(sched.ScheduleAfter(500, bump, 9), 9u % 4u);
  // kNoAffinity rotates round-robin: four consecutive submits from one
  // thread cover all four shards.
  std::set<size_t> seen;
  for (int i = 0; i < 4; ++i) seen.insert(sched.Schedule(bump));
  EXPECT_EQ(seen.size(), 4u);
  sched.Drain();
  EXPECT_EQ(ran.load(), 7);
}

// ---------------------------------------------------------------------------
// Work stealing
// ---------------------------------------------------------------------------

TEST(SchedulerShardingTest, PoolStealsRebalanceImbalancedSubmit) {
  common::ScopedSchedulerSharding on(true);
  common::ThreadPool pool(4);
  ASSERT_EQ(pool.num_shards(), 4u);
  // Park a blocker on shard 0 and wait until it is RUNNING (merely queued is
  // not enough: the sharded own-pop is LIFO, so shard 0's owner could drain
  // later tasks from the back without ever reaching the blocker). Once it
  // runs, whichever worker holds it either stole it off shard 0 (a steal
  // right there) or is worker 0 itself — in which case the quick tasks we
  // pin behind it can only complete via cross-shard steals.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> started;
  pool.Submit(
      [opened, &started] {
        started.set_value();
        opened.wait();
      },
      /*affinity=*/0);
  started.get_future().wait();
  constexpr int kPinned = 32;
  std::atomic<int> ran{0};
  std::vector<std::future<void>> done;
  done.reserve(kPinned);
  for (int i = 0; i < kPinned; ++i)
    done.push_back(
        pool.Submit([&ran] { ran.fetch_add(1); }, /*affinity=*/0));
  for (auto& f : done) f.get();
  EXPECT_EQ(ran.load(), kPinned);
  EXPECT_GE(pool.steals_total(), 1u);
  gate.set_value();
  pool.Wait();
}

TEST(SchedulerShardingTest, SchedulerStealsReadyWorkAcrossShards) {
  common::ScopedSchedulerSharding on(true);
  common::TaskScheduler sched(4);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  sched.Schedule([opened] { opened.wait(); }, /*affinity=*/0);
  constexpr int kPinned = 32;
  std::promise<void> all_ran;
  std::atomic<int> ran{0};
  for (int i = 0; i < kPinned; ++i) {
    sched.Schedule(
        [&ran, &all_ran] {
          if (ran.fetch_add(1) + 1 == kPinned) all_ran.set_value();
        },
        /*affinity=*/0);
  }
  // All pinned tasks complete while the blocker still occupies a thread:
  // they were drained by siblings stealing from shard 0 (or the blocker
  // itself was stolen — a steal either way).
  all_ran.get_future().wait();
  EXPECT_EQ(ran.load(), kPinned);
  EXPECT_GE(sched.steals_total(), 1u);
  gate.set_value();
  sched.Drain();
}

// ---------------------------------------------------------------------------
// Race stress (the interesting interleavings under TSan)
// ---------------------------------------------------------------------------

TEST(SchedulerShardingTest, WaitVsStealVsSubmitRace) {
  common::ScopedSchedulerSharding on(true);
  common::ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kSubmitters = 4;
  constexpr int kTasks = 250;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&pool, &counter, t] {
      for (int i = 0; i < kTasks; ++i) {
        // Even submitters hammer shard 0 (forcing steals); odd ones rotate.
        size_t affinity = (t % 2 == 0) ? 0 : common::kNoAffinity;
        pool.Submit([&counter] { counter.fetch_add(1); }, affinity);
      }
      pool.Wait();  // Wait() races other submitters and thieves; no hang.
    });
  }
  for (auto& th : submitters) th.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), kSubmitters * kTasks);
}

TEST(SchedulerShardingTest, DrainVsScheduleRace) {
  common::ScopedSchedulerSharding on(true);
  common::TaskScheduler sched(4);
  std::atomic<int> counter{0};
  constexpr int kSubmitters = 3;
  constexpr int kTasks = 200;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&sched, &counter, t] {
      for (int i = 0; i < kTasks; ++i) {
        auto bump = [&counter] { counter.fetch_add(1); };
        if (i % 3 == 0) {
          sched.ScheduleAfter(200 + 150 * static_cast<uint64_t>(i % 5), bump,
                              static_cast<size_t>(t));
        } else {
          sched.Schedule(bump, (i % 2 == 0) ? static_cast<size_t>(t)
                                            : common::kNoAffinity);
        }
      }
    });
  }
  // Drain concurrently with the submitters: it must neither hang nor return
  // while work it can observe is still outstanding.
  std::thread drainer([&sched] {
    for (int i = 0; i < 5; ++i) sched.Drain();
  });
  for (auto& th : submitters) th.join();
  drainer.join();
  sched.Drain();
  EXPECT_EQ(counter.load(), kSubmitters * kTasks);
  EXPECT_EQ(sched.tasks_executed(),
            static_cast<uint64_t>(kSubmitters) * kTasks);
}

// ---------------------------------------------------------------------------
// Cross-shard deadline ordering
// ---------------------------------------------------------------------------

TEST(SchedulerShardingTest, CrossShardDeadlineOrderingWithinTolerance) {
  common::ScopedSchedulerSharding on(true);
  common::TaskScheduler sched(4);
  ASSERT_EQ(sched.num_shards(), 4u);
  common::Mutex mu;
  std::vector<int> order;
  auto start = std::chrono::steady_clock::now();
  // Four deadline waves (40/30/20/10 ms), each pinned to a DIFFERENT shard,
  // submitted in reverse deadline order: every shard's owner services its
  // own heap, yet the global firing order must still follow the deadlines.
  for (int wave = 0; wave < 4; ++wave) {
    for (int i = 0; i < 8; ++i) {
      sched.ScheduleAfter(
          10000 * static_cast<uint64_t>(4 - wave),
          [&mu, &order, wave] {
            common::MutexLock lock(mu);
            order.push_back(wave);
          },
          /*affinity=*/static_cast<size_t>(wave));
    }
  }
  sched.Drain();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  common::MutexLock lock(mu);
  ASSERT_EQ(order.size(), 32u);
  // Nothing fired before its deadline: draining the 40 ms wave needs 40 ms.
  EXPECT_GE(elapsed, 40);
  // Tolerance-bounded ordering across shards: every wave-3 (10 ms) task
  // fires before any wave-0 (40 ms) task — adjacent waves may interleave at
  // the boundary under scheduler jitter, 30 ms apart they must not.
  size_t last_w3 = 0;
  size_t first_w0 = order.size();
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 3) last_w3 = i;
    if (order[i] == 0 && i < first_w0) first_w0 = i;
  }
  EXPECT_LT(last_w3, first_w0);
}

// ---------------------------------------------------------------------------
// Shard-family rank discipline
// ---------------------------------------------------------------------------

class SchedulerShardingDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(SchedulerShardingDeathTest, NestedPoolShardLocksDie) {
  SKIP_IF_CHECKS_COMPILED_OUT();
  // All pool shards share one rank: the steal protocol holds at most one
  // shard lock at a time, and the equal-rank check enforces exactly that.
  EXPECT_DEATH(
      {
        common::Mutex own{lockrank::kThreadPoolShard};
        common::Mutex victim{lockrank::kThreadPoolShard};
        common::MutexLock local(own);
        common::MutexLock steal(victim);
      },
      "lock-rank violation");
}

TEST_F(SchedulerShardingDeathTest, NestedSchedulerShardLocksDie) {
  SKIP_IF_CHECKS_COMPILED_OUT();
  EXPECT_DEATH(
      {
        common::Mutex own{lockrank::kSchedulerShard};
        common::Mutex victim{lockrank::kSchedulerShard};
        common::MutexLock local(own);
        common::MutexLock steal(victim);
      },
      "lock-rank violation");
}

TEST_F(SchedulerShardingDeathTest, PoolShardUnderSchedulerEventcountDies) {
  SKIP_IF_CHECKS_COMPILED_OUT();
  // The pool shard family (195) sits ABOVE the scheduler eventcount (180):
  // a scheduler thread parked on sleep_mu_ must never submit pool work.
  EXPECT_DEATH(
      {
        common::Mutex sched_sleep{lockrank::kTaskScheduler};
        common::Mutex pool_shard{lockrank::kThreadPoolShard};
        common::MutexLock parked(sched_sleep);
        common::MutexLock submit(pool_shard);
      },
      "lock-rank violation");
}

}  // namespace
