#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "sql/cost_model.h"
#include "sql/expression.h"
#include "sql/lexer.h"
#include "sql/logical_plan.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "sql/plan_cache.h"
#include "sql/statistics.h"
#include "tests/test_util.h"

namespace blendhouse::sql {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT id FROM t WHERE x >= 1.5;");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 9u);
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_TRUE((*tokens)[6].IsSymbol(">="));
  EXPECT_EQ((*tokens)[7].type, Token::Type::kFloat);
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Tokenize("SELECT x FROM t WHERE s = 'it''s';");
  ASSERT_TRUE(tokens.ok());
  bool found = false;
  for (const Token& t : *tokens)
    if (t.type == Token::Type::kString) {
      EXPECT_EQ(t.text, "it's");
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("SELECT x -- comment here\nFROM t;");
  ASSERT_TRUE(tokens.ok());
  for (const Token& t : *tokens) EXPECT_NE(t.text, "comment");
}

TEST(LexerTest, NegativeNumbers) {
  auto tokens = Tokenize("[-1.5, 2, -3]");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].type, Token::Type::kFloat);
  EXPECT_EQ((*tokens)[1].text, "-1.5");
  EXPECT_EQ((*tokens)[5].text, "-3");
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ParserTest, CreateTableFullDialect) {
  // The paper's Example 1 shape.
  auto stmt = ParseStatement(
      "CREATE TABLE images (id UInt64, label String,"
      " published_time DateTime, embedding Array(Float32),"
      " INDEX ann_idx embedding TYPE HNSW('DIM=4','M=8'))"
      " ORDER BY published_time"
      " PARTITION BY (toYYYYMMDD(published_time), label)"
      " CLUSTER BY embedding INTO 512 BUCKETS;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, Statement::Kind::kCreateTable);
  const storage::TableSchema& schema = stmt->create_table->schema;
  EXPECT_EQ(schema.table_name, "images");
  ASSERT_EQ(schema.columns.size(), 4u);
  EXPECT_EQ(schema.columns[3].type, storage::ColumnType::kFloatVector);
  ASSERT_TRUE(schema.index_spec.has_value());
  EXPECT_EQ(schema.index_spec->type, "HNSW");
  EXPECT_EQ(schema.index_spec->dim, 4u);
  EXPECT_EQ(schema.index_spec->GetInt("M", 0), 8);
  EXPECT_EQ(schema.vector_column, 3);
  EXPECT_EQ(schema.partition_columns, (std::vector<int>{2, 1}));
  EXPECT_EQ(schema.semantic_buckets, 512u);
}

TEST(ParserTest, InsertMultipleRowsWithVectors) {
  auto stmt = ParseStatement(
      "INSERT INTO t VALUES (1, 'a', [1.0, 2.0]), (2, 'b', [3, 4]);");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kInsert);
  ASSERT_EQ(stmt->insert->rows.size(), 2u);
  auto& vec = std::get<std::vector<float>>(stmt->insert->rows[1].values[2]);
  EXPECT_EQ(vec, (std::vector<float>{3, 4}));
}

TEST(ParserTest, HybridSelect) {
  auto stmt = ParseStatement(
      "SELECT id, dist FROM images WHERE label = 'animal'"
      " AND published_time >= 20241010"
      " ORDER BY L2Distance(embedding, [1.0, 0.0]) AS dist LIMIT 100;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& sel = *stmt->select;
  EXPECT_EQ(sel.select_columns, (std::vector<std::string>{"id", "dist"}));
  ASSERT_TRUE(sel.ann.has_value());
  EXPECT_EQ(sel.ann->distance_fn, "L2Distance");
  EXPECT_EQ(sel.ann->vector_column, "embedding");
  EXPECT_EQ(sel.ann->limit, 100u);
  EXPECT_EQ(sel.ann->alias, "dist");
  ASSERT_NE(sel.where, nullptr);
  EXPECT_EQ(sel.where->kind, Expr::Kind::kAnd);
}

TEST(ParserTest, VectorSearchWithoutLimitRejected) {
  auto stmt = ParseStatement(
      "SELECT id FROM t ORDER BY L2Distance(emb, [1.0]);");
  EXPECT_FALSE(stmt.ok());
}

TEST(ParserTest, LimitOffsetOnAnnQuery) {
  auto stmt = ParseStatement(
      "SELECT id FROM t ORDER BY L2Distance(emb, [1.0, 2.0])"
      " LIMIT 10 OFFSET 30;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_TRUE(stmt->select->ann.has_value());
  EXPECT_EQ(stmt->select->ann->limit, 10u);
  EXPECT_EQ(stmt->select->ann->offset, 30u);
  EXPECT_FALSE(stmt->select->scalar_offset.has_value());
}

TEST(ParserTest, LimitOffsetOnScalarQuery) {
  auto stmt = ParseStatement("SELECT id FROM t WHERE x > 5 LIMIT 10 OFFSET 4;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_FALSE(stmt->select->ann.has_value());
  ASSERT_TRUE(stmt->select->scalar_offset.has_value());
  EXPECT_EQ(*stmt->select->scalar_offset, 4u);
}

TEST(ParserTest, OffsetWithoutIntegerRejected) {
  EXPECT_FALSE(ParseStatement("SELECT id FROM t LIMIT 10 OFFSET;").ok());
  EXPECT_FALSE(ParseStatement("SELECT id FROM t LIMIT 10 OFFSET x;").ok());
}

TEST(ParserTest, OffsetDefaultsToZero) {
  auto stmt = ParseStatement(
      "SELECT id FROM t ORDER BY L2Distance(emb, [1.0]) LIMIT 10;");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->ann->offset, 0u);
}

TEST(ParserTest, BetweenDesugarsToRange) {
  auto stmt =
      ParseStatement("SELECT id FROM t WHERE x BETWEEN 10 AND 20 LIMIT 5;");
  ASSERT_TRUE(stmt.ok());
  const Expr& e = *stmt->select->where;
  ASSERT_EQ(e.kind, Expr::Kind::kAnd);
  EXPECT_EQ(e.children[0]->op, Expr::CmpOp::kGe);
  EXPECT_EQ(e.children[1]->op, Expr::CmpOp::kLe);
}

TEST(ParserTest, LikeAndRegexp) {
  auto stmt = ParseStatement(
      "SELECT id FROM t WHERE caption LIKE '%cat%' AND caption REGEXP"
      " '^[0-9]' LIMIT 5;");
  ASSERT_TRUE(stmt.ok());
  const Expr& e = *stmt->select->where;
  EXPECT_EQ(e.children[0]->kind, Expr::Kind::kLike);
  EXPECT_EQ(e.children[1]->kind, Expr::Kind::kRegex);
}

TEST(ParserTest, UpdateDeleteOptimize) {
  auto upd = ParseStatement("UPDATE t SET a = 5, b = 'x' WHERE id = 1;");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd->update->assignments.size(), 2u);

  auto del = ParseStatement("DELETE FROM t WHERE id < 10;");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->kind, Statement::Kind::kDelete);

  auto opt = ParseStatement("OPTIMIZE TABLE t FINAL;");
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->optimize->table, "t");
}

TEST(ParserTest, SetStatement) {
  auto stmt = ParseStatement("SET ef_search = 128;");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kSet);
  EXPECT_EQ(stmt->set->name, "ef_search");
  EXPECT_EQ(std::get<int64_t>(stmt->set->value), 128);

  auto onoff = ParseStatement("SET use_cbo = OFF;");
  ASSERT_TRUE(onoff.ok());
  EXPECT_EQ(std::get<int64_t>(onoff->set->value), 0);
}

TEST(ParserTest, GarbageRejectedCleanly) {
  EXPECT_FALSE(ParseStatement("FROBNICATE THE DATABASE;").ok());
  EXPECT_FALSE(ParseStatement("SELECT FROM;").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t (x Unknowntype);").ok());
}

TEST(ParserTest, ParameterizedSignatureCollapsesLiterals) {
  auto a = ParameterizedSignature(
      "SELECT id FROM t WHERE x > 5 ORDER BY L2Distance(emb,[1.0,2.0])"
      " LIMIT 10;");
  auto b = ParameterizedSignature(
      "SELECT id FROM t WHERE x > 99 ORDER BY L2Distance(emb,[9.5,0.5])"
      " LIMIT 50;");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // same shape, different parameters
  auto c = ParameterizedSignature("SELECT id FROM t WHERE y > 5 LIMIT 10;");
  ASSERT_TRUE(c.ok());
  EXPECT_NE(*a, *c);  // different shape
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

TEST(LikeMatchTest, Wildcards) {
  EXPECT_TRUE(LikeMatch("hello world", "%world"));
  EXPECT_TRUE(LikeMatch("hello world", "hello%"));
  EXPECT_TRUE(LikeMatch("hello world", "%lo wo%"));
  EXPECT_TRUE(LikeMatch("cat", "c_t"));
  EXPECT_FALSE(LikeMatch("cat", "c_"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("abc", "abd"));
}

class ExprEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::TableSchema schema;
    schema.table_name = "t";
    schema.columns = {{"id", storage::ColumnType::kInt64},
                      {"score", storage::ColumnType::kFloat64},
                      {"name", storage::ColumnType::kString}};
    storage::SegmentBuilder builder(schema, "s0");
    const char* names[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
    for (int64_t i = 0; i < 5; ++i) {
      storage::Row row;
      row.values = {i, 0.1 * static_cast<double>(i), std::string(names[i])};
      ASSERT_TRUE(builder.AppendRow(row).ok());
    }
    auto segment = builder.Finish();
    ASSERT_TRUE(segment.ok());
    segment_ = *segment;
  }

  ExprPtr Parse(const std::string& where) {
    auto stmt = ParseStatement("SELECT id FROM t WHERE " + where + " LIMIT 1;");
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    return std::move(stmt->select->where);
  }

  std::vector<size_t> Matching(const std::string& where) {
    ExprPtr expr = Parse(where);
    auto eval = PredicateEvaluator::Bind(*expr, *segment_);
    EXPECT_TRUE(eval.ok()) << eval.status().ToString();
    std::vector<size_t> out;
    for (size_t i = 0; i < segment_->num_rows(); ++i)
      if (eval->EvalRow(i)) out.push_back(i);
    return out;
  }

  storage::SegmentPtr segment_;
};

TEST_F(ExprEvalTest, NumericComparisons) {
  EXPECT_EQ(Matching("id > 2"), (std::vector<size_t>{3, 4}));
  EXPECT_EQ(Matching("id = 0"), (std::vector<size_t>{0}));
  EXPECT_EQ(Matching("score <= 0.2"), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(Matching("id != 1"), (std::vector<size_t>{0, 2, 3, 4}));
}

TEST_F(ExprEvalTest, BooleanConnectives) {
  EXPECT_EQ(Matching("id > 0 AND id < 3"), (std::vector<size_t>{1, 2}));
  EXPECT_EQ(Matching("id = 0 OR id = 4"), (std::vector<size_t>{0, 4}));
  EXPECT_EQ(Matching("NOT id < 4"), (std::vector<size_t>{4}));
}

TEST_F(ExprEvalTest, StringPredicates) {
  EXPECT_EQ(Matching("name = 'gamma'"), (std::vector<size_t>{2}));
  EXPECT_EQ(Matching("name LIKE '%ta'"), (std::vector<size_t>{1, 3}));
  EXPECT_EQ(Matching("name REGEXP '^..l'"), (std::vector<size_t>{3}));
}

TEST_F(ExprEvalTest, UnknownColumnFailsBind) {
  ExprPtr expr = Parse("nonexistent = 1");
  EXPECT_FALSE(PredicateEvaluator::Bind(*expr, *segment_).ok());
}

TEST_F(ExprEvalTest, BadRegexFailsBind) {
  ExprPtr expr = Parse("name REGEXP '[unclosed'");
  EXPECT_FALSE(PredicateEvaluator::Bind(*expr, *segment_).ok());
}

TEST_F(ExprEvalTest, BitmapMatchesRowEval) {
  ExprPtr expr = Parse("id >= 1 AND id <= 3");
  auto eval = PredicateEvaluator::Bind(*expr, *segment_);
  ASSERT_TRUE(eval.ok());
  common::Bitset bitmap = eval->BuildBitmap(nullptr, true);
  for (size_t i = 0; i < segment_->num_rows(); ++i)
    EXPECT_EQ(bitmap.Test(i), eval->EvalRow(i)) << i;
}

TEST_F(ExprEvalTest, BitmapExcludesDeleted) {
  ExprPtr expr = Parse("id >= 0");
  auto eval = PredicateEvaluator::Bind(*expr, *segment_);
  ASSERT_TRUE(eval.ok());
  common::Bitset deletes(5);
  deletes.Set(2);
  common::Bitset bitmap = eval->BuildBitmap(&deletes, true);
  EXPECT_FALSE(bitmap.Test(2));
  EXPECT_EQ(bitmap.Count(), 4u);
}

TEST_F(ExprEvalTest, CompiledPredicateBadRegexFailsAtCompile) {
  ExprPtr expr = Parse("name REGEXP '[unclosed'");
  auto compiled = CompiledPredicate::Compile(*expr);
  ASSERT_FALSE(compiled.ok());
  EXPECT_TRUE(compiled.status().IsInvalidArgument());
}

TEST_F(ExprEvalTest, CompiledPredicateSharedAcrossSegments) {
  // One compile serves every per-segment bind (the per-query contract the
  // executor relies on); the fingerprint is the canonical text form.
  ExprPtr expr = Parse("name REGEXP '^..l' AND id > 0");
  auto compiled = CompiledPredicate::Compile(*expr);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ((*compiled)->fingerprint(), expr->ToString());
  for (int pass = 0; pass < 2; ++pass) {
    auto eval = PredicateEvaluator::Bind(*compiled, *segment_);
    ASSERT_TRUE(eval.ok());
    EXPECT_EQ(Matching("name REGEXP '^..l' AND id > 0"),
              (std::vector<size_t>{3}));
    common::Bitset bitmap = eval->BuildBitmap(nullptr, true);
    EXPECT_TRUE(bitmap.Test(3));
    EXPECT_EQ(bitmap.Count(), 1u);
  }
}

// ---------------------------------------------------------------------------
// Property test: vectorized BuildBitmap is bit-identical to row-wise EvalRow
// ---------------------------------------------------------------------------

storage::SegmentPtr MakeRandomSegment(common::Rng& rng, size_t rows) {
  storage::TableSchema schema;
  schema.table_name = "t";
  schema.columns = {{"id", storage::ColumnType::kInt64},
                    {"score", storage::ColumnType::kFloat64},
                    {"name", storage::ColumnType::kString}};
  storage::SegmentBuilder builder(schema, "prop");
  static const char* kNames[] = {"",        "cat",    "catalog", "concat",
                                 "dog",     "hot dog", "c_t",    "a%b",
                                 "categry", "x"};
  for (size_t i = 0; i < rows; ++i) {
    storage::Row row;
    double score = rng.UniformInt(0, 9) == 0
                       ? std::numeric_limits<double>::quiet_NaN()
                       : rng.Uniform(-5.0, 5.0);
    row.values = {rng.UniformInt(-50, 50), score,
                  std::string(kNames[rng.UniformInt(0, 9)])};
    EXPECT_TRUE(builder.AppendRow(row).ok());
  }
  auto segment = builder.Finish();
  EXPECT_TRUE(segment.ok());
  return *segment;
}

ExprPtr RandomPredicate(common::Rng& rng, int depth) {
  static const Expr::CmpOp kOps[] = {Expr::CmpOp::kEq, Expr::CmpOp::kNe,
                                     Expr::CmpOp::kLt, Expr::CmpOp::kLe,
                                     Expr::CmpOp::kGt, Expr::CmpOp::kGe};
  if (depth > 0) {
    switch (rng.UniformInt(0, 3)) {
      case 0:
        return Expr::And(RandomPredicate(rng, depth - 1),
                         RandomPredicate(rng, depth - 1));
      case 1:
        return Expr::Or(RandomPredicate(rng, depth - 1),
                        RandomPredicate(rng, depth - 1));
      case 2:
        return Expr::Not(RandomPredicate(rng, depth - 1));
      default:
        break;  // fall through to a leaf
    }
  }
  Expr::CmpOp op = kOps[rng.UniformInt(0, 5)];
  switch (rng.UniformInt(0, 6)) {
    case 0:  // int column vs int literal
      return Expr::Compare(op, Expr::Column("id"),
                           Expr::Literal(rng.UniformInt(-50, 50)));
    case 1: {  // double column, occasionally a NaN literal
      double lit = rng.UniformInt(0, 9) == 0
                       ? std::numeric_limits<double>::quiet_NaN()
                       : rng.Uniform(-5.0, 5.0);
      return Expr::Compare(op, Expr::Column("score"), Expr::Literal(lit));
    }
    case 2:  // string ordering compare
      return Expr::Compare(op, Expr::Column("name"),
                           Expr::Literal(std::string("cat")));
    case 3:  // type mismatch: always false
      return rng.UniformInt(0, 1) == 0
                 ? Expr::Compare(op, Expr::Column("name"),
                                 Expr::Literal(int64_t{3}))
                 : Expr::Compare(op, Expr::Column("id"),
                                 Expr::Literal(std::string("cat")));
    case 4: {  // LIKE across every anchored shape plus generic
      static const char* kPatterns[] = {"cat",   "cat%", "%cat", "%cat%",
                                        "c_t",   "%a%o%", "%",   "",
                                        "%%",    "cat_log"};
      return Expr::Like(Expr::Column("name"),
                        kPatterns[rng.UniformInt(0, 9)]);
    }
    case 5: {  // REGEXP (compiled once per query)
      static const char* kPatterns[] = {"^cat", "dog$", "c.t", "o", "^$"};
      return Expr::Regex(Expr::Column("name"),
                         kPatterns[rng.UniformInt(0, 4)]);
    }
    default:  // LIKE on a numeric column: always false
      return Expr::Like(Expr::Column("id"), "cat%");
  }
}

TEST(FilterBitmapPropertyTest, VectorizedMatchesRowWise) {
  common::Rng rng(20250805);
  for (int iter = 0; iter < 80; ++iter) {
    // Sizes straddle word (64) and granule (128) boundaries and exceed the
    // 4096-row evaluation block on the last iterations.
    size_t rows = iter < 70 ? static_cast<size_t>(rng.UniformInt(1, 700))
                            : static_cast<size_t>(rng.UniformInt(4000, 5000));
    storage::SegmentPtr segment = MakeRandomSegment(rng, rows);
    ExprPtr expr = RandomPredicate(rng, 3);
    auto compiled = CompiledPredicate::Compile(*expr);
    ASSERT_TRUE(compiled.ok()) << expr->ToString();
    auto eval = PredicateEvaluator::Bind(*compiled, *segment);
    ASSERT_TRUE(eval.ok()) << expr->ToString();

    common::Bitset deletes;
    const common::Bitset* deletes_ptr = nullptr;
    switch (rng.UniformInt(0, 2)) {
      case 0:
        break;  // no delete bitmap
      case 1:  // full-size random deletes
        deletes.Resize(rows);
        for (size_t i = 0; i < rows; ++i)
          if (rng.UniformInt(0, 3) == 0) deletes.Set(i);
        deletes_ptr = &deletes;
        break;
      default:  // shorter bitmap: remaining bits read as unset
        deletes.Resize(rows / 2);
        for (size_t i = 0; i < rows / 2; ++i)
          if (rng.UniformInt(0, 3) == 0) deletes.Set(i);
        deletes_ptr = &deletes;
        break;
    }

    for (bool pruning : {false, true}) {
      common::Bitset bitmap = eval->BuildBitmap(deletes_ptr, pruning);
      ASSERT_EQ(bitmap.size(), rows);
      for (size_t i = 0; i < rows; ++i) {
        bool expect = eval->EvalRow(i) &&
                      !(deletes_ptr != nullptr && deletes_ptr->Test(i));
        ASSERT_EQ(bitmap.Test(i), expect)
            << "iter=" << iter << " row=" << i << " pruning=" << pruning
            << " rows=" << rows << " expr=" << expr->ToString();
      }
    }
  }
}

TEST(SegmentPruneTest, NumericRangesPrune) {
  storage::SegmentMeta meta;
  meta.numeric_ranges["x"] = {10.0, 20.0};
  auto parse = [](const std::string& where) {
    auto stmt =
        ParseStatement("SELECT id FROM t WHERE " + where + " LIMIT 1;");
    return std::move(stmt->select->where);
  };
  EXPECT_FALSE(MayMatchSegment(*parse("x > 25"), meta));
  EXPECT_TRUE(MayMatchSegment(*parse("x > 15"), meta));
  EXPECT_FALSE(MayMatchSegment(*parse("x < 5"), meta));
  EXPECT_TRUE(MayMatchSegment(*parse("x = 15"), meta));
  EXPECT_FALSE(MayMatchSegment(*parse("x = 5"), meta));
  // Unknown columns are conservative.
  EXPECT_TRUE(MayMatchSegment(*parse("y = 5"), meta));
  // OR keeps the segment if either side may match.
  EXPECT_TRUE(MayMatchSegment(*parse("x > 25 OR x < 15"), meta));
  EXPECT_FALSE(MayMatchSegment(*parse("x > 25 AND x < 15"), meta));
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

TEST(HistogramTest2, UniformRangeEstimates) {
  std::vector<double> samples;
  for (int i = 0; i < 10000; ++i) samples.push_back(i % 1000);
  ColumnHistogram h = ColumnHistogram::Build(std::move(samples), 32);
  EXPECT_NEAR(h.EstimateRange(0, 499), 0.5, 0.05);
  EXPECT_NEAR(h.EstimateCompare(Expr::CmpOp::kLt, 100), 0.1, 0.05);
  EXPECT_NEAR(h.EstimateCompare(Expr::CmpOp::kGe, 900), 0.1, 0.05);
  EXPECT_LT(h.EstimateCompare(Expr::CmpOp::kEq, 500), 0.1);
}

TEST(StatisticsTest, SelectivityOfConjunction) {
  storage::TableSchema schema;
  schema.table_name = "t";
  schema.columns = {{"a", storage::ColumnType::kInt64},
                    {"b", storage::ColumnType::kInt64}};
  storage::SegmentBuilder builder(schema, "s0");
  common::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    storage::Row row;
    row.values = {rng.UniformInt(0, 99), rng.UniformInt(0, 99)};
    ASSERT_TRUE(builder.AppendRow(row).ok());
  }
  auto segment = builder.Finish();
  ASSERT_TRUE(segment.ok());
  TableStatistics stats = TableStatistics::Build({*segment});
  EXPECT_EQ(stats.num_rows(), 2000u);

  auto parse = [](const std::string& where) {
    auto stmt =
        ParseStatement("SELECT a FROM t WHERE " + where + " LIMIT 1;");
    return std::move(stmt->select->where);
  };
  EXPECT_NEAR(stats.EstimateSelectivity(*parse("a < 50")), 0.5, 0.1);
  // Independence: P(a<50 AND b<50) ~ 0.25.
  EXPECT_NEAR(stats.EstimateSelectivity(*parse("a < 50 AND b < 50")), 0.25,
              0.1);
  EXPECT_NEAR(stats.EstimateSelectivity(*parse("a < 50 OR b < 50")), 0.75,
              0.1);
}

// ---------------------------------------------------------------------------
// Cost model (the CBO crossovers of Fig. 9/15)
// ---------------------------------------------------------------------------

TEST(CostModelTest, TinyPassFractionPrefersBruteForce) {
  // "99% selectivity" workload: almost everything filtered out.
  PlanCostInputs in;
  in.n = 1000000;
  in.s = 0.01;
  in.beta = 0.001;
  in.gamma = 0.00125;
  in.k = 100;
  CostModelParams p = CostModelParams::ForIndex(768, "HNSW");
  EXPECT_EQ(ChooseStrategy(in, p).strategy, ExecStrategy::kBruteForce);
}

TEST(CostModelTest, PermissiveFilterPrefersPostFilter) {
  // "1% selectivity" workload: almost everything passes.
  PlanCostInputs in;
  in.n = 1000000;
  in.s = 0.99;
  in.beta = 0.001;
  in.gamma = 0.00125;
  in.k = 100;
  CostModelParams p = CostModelParams::ForIndex(768, "HNSW");
  EXPECT_EQ(ChooseStrategy(in, p).strategy, ExecStrategy::kPostFilter);
}

TEST(CostModelTest, MidSelectivityPrefersPreFilterForCheapCodes) {
  // Moderate pass fraction with a PQ index (cheap code scans): the bitmap
  // scan's c_p + s*c_c term beats plan A's s*n*c_d.
  PlanCostInputs in;
  in.n = 1000000;
  in.s = 0.30;
  in.beta = 0.02;
  in.gamma = 0.025;
  in.k = 100;
  CostModelParams p = CostModelParams::ForIndex(768, "IVFPQ");
  StrategyChoice choice = ChooseStrategy(in, p);
  EXPECT_EQ(choice.strategy, ExecStrategy::kPreFilter);
  EXPECT_LT(choice.cost_b, choice.cost_a);
  EXPECT_LT(choice.cost_b, choice.cost_c);
}

TEST(CostModelTest, CostsMonotonicInN) {
  CostModelParams p = CostModelParams::ForIndex(96, "HNSW");
  PlanCostInputs small;
  small.n = 1000;
  small.s = 0.5;
  PlanCostInputs big = small;
  big.n = 100000;
  EXPECT_LT(CostPlanA(small, p), CostPlanA(big, p));
  EXPECT_LT(CostPlanB(small, p), CostPlanB(big, p));
  EXPECT_LT(CostPlanC(small, p), CostPlanC(big, p));
}

// ---------------------------------------------------------------------------
// Logical plan & rewrite rules
// ---------------------------------------------------------------------------

class PlanTest : public ::testing::Test {
 protected:
  PlanTest() {
    schema_.table_name = "t";
    schema_.columns = {{"id", storage::ColumnType::kInt64},
                       {"x", storage::ColumnType::kInt64},
                       {"emb", storage::ColumnType::kFloatVector}};
    vecindex::IndexSpec spec;
    spec.type = "HNSW";
    spec.dim = 2;
    schema_.index_spec = spec;
    schema_.vector_column = 2;
  }

  SelectStmt ParseSelect(const std::string& sql) {
    auto stmt = ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    return std::move(*stmt->select);
  }

  storage::TableSchema schema_;
};

TEST_F(PlanTest, BuildsCanonicalPipeline) {
  SelectStmt stmt = ParseSelect(
      "SELECT id, d FROM t WHERE x > 5"
      " ORDER BY L2Distance(emb, [1.0, 2.0]) AS d LIMIT 7;");
  auto plan = BuildLogicalPlan(stmt, schema_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Project <- TopK <- Filter <- AnnScan
  EXPECT_EQ((*plan)->kind, PlanNode::Kind::kProject);
  EXPECT_EQ((*plan)->child->kind, PlanNode::Kind::kTopK);
  EXPECT_EQ((*plan)->child->child->kind, PlanNode::Kind::kFilter);
  EXPECT_EQ((*plan)->child->child->child->kind, PlanNode::Kind::kAnnScan);
}

TEST_F(PlanTest, TopKPushdownRule) {
  SelectStmt stmt = ParseSelect(
      "SELECT id FROM t ORDER BY L2Distance(emb, [1.0, 2.0]) LIMIT 9;");
  auto plan = BuildLogicalPlan(stmt, schema_);
  ASSERT_TRUE(plan.ok());
  PlanNode* ann = (*plan)->FindNode(PlanNode::Kind::kAnnScan);
  EXPECT_EQ(ann->pushed_k, 0u);
  EXPECT_TRUE(ApplyTopKPushdown(plan->get()));
  EXPECT_EQ(ann->pushed_k, 9u);
  EXPECT_FALSE(ApplyTopKPushdown(plan->get()));  // idempotent
}

TEST_F(PlanTest, OffsetPushesDownWithTopK) {
  SelectStmt stmt = ParseSelect(
      "SELECT id FROM t ORDER BY L2Distance(emb, [1.0, 2.0])"
      " LIMIT 9 OFFSET 18;");
  auto plan = BuildLogicalPlan(stmt, schema_);
  ASSERT_TRUE(plan.ok());
  PlanNode* ann = (*plan)->FindNode(PlanNode::Kind::kAnnScan);
  EXPECT_EQ(ann->pushed_offset, 0u);
  EXPECT_TRUE(ApplyTopKPushdown(plan->get()));
  EXPECT_EQ(ann->pushed_k, 9u);
  EXPECT_EQ(ann->pushed_offset, 18u);
  // EXPLAIN surfaces pagination on both the TopK and the pushed scan.
  std::string explain = ExplainPlan(**plan);
  EXPECT_NE(explain.find("offset=18"), std::string::npos) << explain;
  // The bound descriptor carries it to the executor and the cost model
  // pays for the widened fetch.
  auto opt = Optimize(stmt, schema_, nullptr, QuerySettings{});
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->bound.k, 9u);
  EXPECT_EQ(opt->bound.offset, 18u);
}

TEST_F(PlanTest, RangeFilterPushdownRule) {
  SelectStmt stmt = ParseSelect(
      "SELECT id FROM t WHERE x > 5 AND d < 2.5"
      " ORDER BY L2Distance(emb, [1.0, 2.0]) AS d LIMIT 9;");
  auto plan = BuildLogicalPlan(stmt, schema_);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ApplyRangeFilterPushdown(plan->get(), "d"));
  PlanNode* ann = (*plan)->FindNode(PlanNode::Kind::kAnnScan);
  EXPECT_DOUBLE_EQ(ann->pushed_range, 2.5);
  // The residual filter keeps only the scalar conjunct.
  PlanNode* filter = (*plan)->FindNode(PlanNode::Kind::kFilter);
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->predicate->ToString(), "(x > 5)");
}

TEST_F(PlanTest, RangeOnlyFilterIsSplicedOut) {
  SelectStmt stmt = ParseSelect(
      "SELECT id FROM t WHERE d < 1.5"
      " ORDER BY L2Distance(emb, [1.0, 2.0]) AS d LIMIT 9;");
  auto plan = BuildLogicalPlan(stmt, schema_);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ApplyRangeFilterPushdown(plan->get(), "d"));
  EXPECT_EQ((*plan)->FindNode(PlanNode::Kind::kFilter), nullptr);
}

TEST_F(PlanTest, VectorColumnPruningRule) {
  SelectStmt no_vec = ParseSelect(
      "SELECT id FROM t ORDER BY L2Distance(emb, [1.0, 2.0]) LIMIT 5;");
  auto plan = BuildLogicalPlan(no_vec, schema_);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ApplyVectorColumnPruning(plan->get(), schema_));
  EXPECT_FALSE(
      (*plan)->FindNode(PlanNode::Kind::kAnnScan)->read_vector_column);

  SelectStmt with_vec = ParseSelect(
      "SELECT id, emb FROM t ORDER BY L2Distance(emb, [1.0, 2.0]) LIMIT 5;");
  auto plan2 = BuildLogicalPlan(with_vec, schema_);
  ASSERT_TRUE(plan2.ok());
  EXPECT_FALSE(ApplyVectorColumnPruning(plan2->get(), schema_));
}

TEST_F(PlanTest, DimMismatchRejected) {
  SelectStmt stmt = ParseSelect(
      "SELECT id FROM t ORDER BY L2Distance(emb, [1.0, 2.0, 3.0]) LIMIT 5;");
  EXPECT_FALSE(BuildLogicalPlan(stmt, schema_).ok());
}

TEST_F(PlanTest, OptimizeEndToEnd) {
  SelectStmt stmt = ParseSelect(
      "SELECT id, d FROM t WHERE x > 5"
      " ORDER BY L2Distance(emb, [1.0, 2.0]) AS d LIMIT 7;");
  QuerySettings settings;
  auto optimized = Optimize(stmt, schema_, nullptr, settings);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_TRUE(optimized->bound.has_ann);
  EXPECT_EQ(optimized->bound.k, 7u);
  EXPECT_EQ(optimized->rules_fired, 2);  // topk pushdown + vector pruning
  EXPECT_NE(optimized->explain.find("AnnScan"), std::string::npos);
}

TEST_F(PlanTest, ForcedStrategyWins) {
  SelectStmt stmt = ParseSelect(
      "SELECT id FROM t WHERE x > 5"
      " ORDER BY L2Distance(emb, [1.0, 2.0]) LIMIT 7;");
  QuerySettings settings;
  settings.forced_strategy = ExecStrategy::kBruteForce;
  auto optimized = Optimize(stmt, schema_, nullptr, settings);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(optimized->choice.strategy, ExecStrategy::kBruteForce);
}

TEST_F(PlanTest, CboOffUsesDefaultStrategy) {
  SelectStmt stmt = ParseSelect(
      "SELECT id FROM t WHERE x > 5"
      " ORDER BY L2Distance(emb, [1.0, 2.0]) LIMIT 7;");
  QuerySettings settings;
  settings.use_cbo = false;
  settings.default_strategy = ExecStrategy::kPreFilter;
  auto optimized = Optimize(stmt, schema_, nullptr, settings);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(optimized->choice.strategy, ExecStrategy::kPreFilter);
}

TEST_F(PlanTest, ShortCircuitHandlesSimpleShapes) {
  SelectStmt simple = ParseSelect(
      "SELECT id FROM t WHERE x > 5"
      " ORDER BY L2Distance(emb, [1.0, 2.0]) LIMIT 7;");
  auto quick =
      ShortCircuitOptimize(simple, schema_, ExecStrategy::kPostFilter);
  ASSERT_TRUE(quick.ok()) << quick.status().ToString();
  EXPECT_EQ(quick->bound.k, 7u);
  EXPECT_EQ(quick->choice.strategy, ExecStrategy::kPostFilter);

  // Range constraint on the alias needs the full optimizer.
  SelectStmt ranged = ParseSelect(
      "SELECT id FROM t WHERE d < 1.0"
      " ORDER BY L2Distance(emb, [1.0, 2.0]) AS d LIMIT 7;");
  EXPECT_TRUE(ShortCircuitOptimize(ranged, schema_,
                                   ExecStrategy::kPostFilter)
                  .status()
                  .IsNotSupported());

  // Vector output needs the full optimizer.
  SelectStmt vec_out = ParseSelect(
      "SELECT emb FROM t ORDER BY L2Distance(emb, [1.0, 2.0]) LIMIT 7;");
  EXPECT_TRUE(ShortCircuitOptimize(vec_out, schema_,
                                   ExecStrategy::kPostFilter)
                  .status()
                  .IsNotSupported());
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, HitAfterPut) {
  PlanCache cache(4);
  EXPECT_FALSE(cache.Get("sig1").has_value());
  CachedPlan plan;
  plan.strategy = ExecStrategy::kBruteForce;
  cache.Put("sig1", plan);
  auto hit = cache.Get("sig1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->strategy, ExecStrategy::kBruteForce);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCacheTest, LruEviction) {
  PlanCache cache(2);
  cache.Put("a", {});
  cache.Put("b", {});
  ASSERT_TRUE(cache.Get("a").has_value());
  cache.Put("c", {});  // evicts b
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
}

TEST(PlanCacheTest, InvalidateClearsAll) {
  PlanCache cache(4);
  cache.Put("a", {});
  cache.Invalidate();
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace blendhouse::sql
