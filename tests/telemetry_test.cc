#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/worker.h"
#include "common/metrics.h"
#include "common/task_scheduler.h"
#include "common/trace.h"
#include "core/blendhouse.h"
#include "tests/test_util.h"

namespace blendhouse {
namespace {

using common::metrics::Counter;
using common::metrics::HistogramMetric;
using common::metrics::MetricsRegistry;

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterIsExactUnderConcurrency) {
  Counter* c = MetricsRegistry::Instance().GetCounter("bh_test_conc_total");
  c->ResetForTest();
  constexpr int kThreads = 8;
  constexpr int kAdds = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([c] {
      for (int i = 0; i < kAdds; ++i) c->Add(1);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kAdds);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  auto& reg = MetricsRegistry::Instance();
  EXPECT_EQ(reg.GetCounter("bh_test_stable_total"),
            reg.GetCounter("bh_test_stable_total"));
  EXPECT_EQ(reg.GetGauge("bh_test_stable_gauge"),
            reg.GetGauge("bh_test_stable_gauge"));
  EXPECT_EQ(reg.GetHistogram("bh_test_stable_micros"),
            reg.GetHistogram("bh_test_stable_micros"));
}

TEST(MetricsTest, GaugeTracksInstantaneousValue) {
  auto* g = MetricsRegistry::Instance().GetGauge("bh_test_depth");
  g->Set(0);
  g->Add(5);
  g->Sub(2);
  EXPECT_EQ(g->Value(), 3);
  g->Set(42);
  EXPECT_EQ(g->Value(), 42);
}

TEST(MetricsTest, HistogramMetricSnapshotHasPercentiles) {
  HistogramMetric hist({10.0, 100.0, 1000.0});
  for (int i = 1; i <= 100; ++i) hist.Record(static_cast<double>(i));
  EXPECT_EQ(hist.Count(), 100u);
  EXPECT_DOUBLE_EQ(hist.Sum(), 5050.0);
  common::BucketedHistogram snap = hist.Snapshot();
  EXPECT_EQ(snap.Count(), 100u);
  // 10% of samples land in (0,10], 90% in (10,100]; the median falls in the
  // second bucket.
  double p50 = snap.Percentile(50);
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 100.0);
}

TEST(MetricsTest, SnapshotAndExportersIncludeRegisteredMetrics) {
  auto& reg = MetricsRegistry::Instance();
  reg.GetCounter("bh_test_export_total")->ResetForTest();
  reg.GetCounter("bh_test_export_total")->Add(7);
  reg.GetHistogram("bh_test_export_micros")->Record(33.0);

  bool found = false;
  for (const auto& sample : reg.Snapshot()) {
    if (sample.name == "bh_test_export_total") {
      found = true;
      EXPECT_DOUBLE_EQ(sample.value, 7.0);
    }
  }
  EXPECT_TRUE(found);

  std::string prom = reg.ExportPrometheus();
  EXPECT_NE(prom.find("bh_test_export_total 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE bh_test_export_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("bh_test_export_micros"), std::string::npos);

  std::string json = reg.ExportJson();
  EXPECT_NE(json.find("\"bh_test_export_total\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsTest, CounterShardCountIsFrozenProcessWide) {
  // By the time any test runs, counters exist, so the shard count is frozen:
  // a power of two, at least the historical 16, shared by every counter.
  size_t shards = common::metrics::CounterShardCount();
  EXPECT_GE(shards, 16u);
  EXPECT_EQ(shards & (shards - 1), 0u) << shards << " is not a power of two";
  Counter* c = MetricsRegistry::Instance().GetCounter("bh_test_shards_total");
  EXPECT_EQ(c->shard_count(), shards);
  // Reconfiguration after the freeze is refused and changes nothing.
  EXPECT_FALSE(common::metrics::ConfigureCounterShards(8));
  EXPECT_EQ(common::metrics::CounterShardCount(), shards);
}

TEST(MetricsTest, CounterIsExactWithMoreThreadsThanLegacyShards) {
  // ROADMAP item-5 leftover: sharding now scales with the host instead of
  // the historical fixed 16. Drive well past 16 concurrent writers and
  // require an exact total — extra threads may share shards but never lose
  // increments.
  Counter* c = MetricsRegistry::Instance().GetCounter("bh_test_wide_total");
  c->ResetForTest();
  constexpr int kThreads = 48;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([c] {
      for (int i = 0; i < kAdds; ++i) c->Add(1);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kAdds);
}

TEST(MetricsTest, PrometheusNameSanitization) {
  using common::metrics::PrometheusSanitizeName;
  EXPECT_EQ(PrometheusSanitizeName("bh_ok_total"), "bh_ok_total");
  EXPECT_EQ(PrometheusSanitizeName("a:b"), "a:b");  // colon is legal
  EXPECT_EQ(PrometheusSanitizeName("bh.dots-and spaces"),
            "bh_dots_and_spaces");
  EXPECT_EQ(PrometheusSanitizeName("9leading_digit"), "_9leading_digit");
  EXPECT_EQ(PrometheusSanitizeName(""), "_");  // never an empty name
}

TEST(MetricsTest, PrometheusLabelEscaping) {
  using common::metrics::PrometheusEscapeLabel;
  EXPECT_EQ(PrometheusEscapeLabel("plain"), "plain");
  EXPECT_EQ(PrometheusEscapeLabel("a\"b"), "a\\\"b");
  EXPECT_EQ(PrometheusEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeLabel("a\nb"), "a\\nb");
}

TEST(MetricsTest, ExporterSanitizesAdHocMetricNames) {
  auto& reg = MetricsRegistry::Instance();
  reg.GetCounter("bh test bad.name")->Add(1);
  std::string prom = reg.ExportPrometheus();
  EXPECT_NE(prom.find("bh_test_bad_name 1"), std::string::npos);
  EXPECT_EQ(prom.find("bh test bad.name"), std::string::npos);
}

TEST(MetricsTest, HistogramQuantileEdges) {
  // Empty histogram: percentiles report 0, not garbage.
  HistogramMetric h({10.0, 100.0});
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Snapshot().Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.Snapshot().Percentile(99), 0.0);

  // Single sample: every percentile falls inside the sample's bucket.
  h.Record(42.0);
  common::BucketedHistogram one = h.Snapshot();
  for (double p : {0.0, 50.0, 100.0}) {
    EXPECT_GT(one.Percentile(p), 10.0) << "p=" << p;
    EXPECT_LE(one.Percentile(p), 100.0) << "p=" << p;
  }

  // All samples in one bucket: the full percentile range stays within that
  // bucket's edges.
  h.ResetForTest();
  for (int i = 0; i < 1000; ++i) h.Record(50.0);
  common::BucketedHistogram packed = h.Snapshot();
  EXPECT_GT(packed.Percentile(1), 10.0);
  EXPECT_LE(packed.Percentile(1), 100.0);
  EXPECT_GT(packed.Percentile(99), 10.0);
  EXPECT_LE(packed.Percentile(99), 100.0);

  // Overflow bucket has no finite edge; percentiles report the last bound.
  h.ResetForTest();
  h.Record(1e9);
  EXPECT_DOUBLE_EQ(h.Snapshot().Percentile(50), 100.0);
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

TEST(TraceTest, SpanTreeRecordsParentLinks) {
  trace::TracePtr trace = trace::Trace::Make("q");
  trace::SpanPtr root = trace->StartSpan("query");
  trace::SpanPtr child = trace->StartSpan("execute", root);
  trace::SpanPtr leaf = trace->StartSpan("segment_scan", child);
  EXPECT_EQ(trace->open_spans(), 3);
  leaf->SetBreakdown(10, 20, 30);
  leaf->End();
  child->End();
  root->End();
  EXPECT_EQ(trace->open_spans(), 0);

  auto spans = trace->Collect();
  ASSERT_EQ(spans.size(), 3u);
  // Collect() is in End() order: leaf, child, root.
  EXPECT_EQ(spans[0].name, "segment_scan");
  EXPECT_EQ(spans[0].parent_id, spans[1].span_id);
  EXPECT_EQ(spans[1].parent_id, spans[2].span_id);
  EXPECT_EQ(spans[2].parent_id, 0u);
  EXPECT_DOUBLE_EQ(spans[0].sim_io_micros, 20.0);
}

TEST(TraceTest, EndIsExactlyOnce) {
  trace::TracePtr trace = trace::Trace::Make("q");
  trace::SpanPtr span = trace->StartSpan("s");
  span->End();
  span->End();     // no-op
  span.reset();    // destructor after End(): also a no-op
  EXPECT_EQ(trace->open_spans(), 0);
  EXPECT_EQ(trace->Collect().size(), 1u);
}

TEST(TraceTest, AbandonedSpanSelfClosesOnLastRelease) {
  trace::TracePtr trace = trace::Trace::Make("q");
  trace->StartSpan("forgotten");  // SpanPtr dropped immediately, never End()ed
  EXPECT_EQ(trace->open_spans(), 0);
  ASSERT_EQ(trace->Collect().size(), 1u);
  EXPECT_EQ(trace->Collect()[0].name, "forgotten");
}

// Every SearchSegmentAsync continuation closes its span exactly once, even
// for tasks that short-circuit (a cancelled attempt's stragglers): `done`
// runs for every dispatched task, so the executor ends spans there.
TEST(TraceTest, AsyncSegmentTasksCloseSpansExactlyOnce) {
  storage::ObjectStore store(storage::StorageCostModel::Instant());
  cluster::RpcFabric rpc(cluster::RpcFabric::CostModel{0, 1e12, false});
  cluster::WorkerOptions wopts;
  wopts.cache.disk_cost = storage::StorageCostModel::Instant();
  // Scheduler before worker (as in VirtualWarehouse): ~Worker joins the pool
  // threads that deliver `done` through the scheduler, so the scheduler must
  // be destroyed after them.
  common::TaskScheduler sched(2);
  cluster::Worker worker("w0", &store, &rpc, wopts);

  trace::TracePtr trace = trace::Trace::Make("q");
  trace::SpanPtr root = trace->StartSpan("execute");
  constexpr int kTasks = 24;
  std::atomic<int> done_count{0};
  std::atomic<bool> cancelled{false};
  for (int i = 0; i < kTasks; ++i) {
    trace::SpanPtr span = trace->StartSpan("segment_scan", root);
    worker.SearchSegmentAsync(
        &sched,
        /*search=*/
        [i, &cancelled] {
          if (i == kTasks / 2) cancelled.store(true);  // mid-flight failure
          if (cancelled.load()) return;                // straggler short-circuit
          common::ChargeSimLatency(100);
        },
        /*done=*/
        [span, &done_count](const cluster::AsyncTaskStats& ts) {
          span->SetBreakdown(static_cast<double>(ts.compute_micros),
                             static_cast<double>(ts.sim_io_micros),
                             static_cast<double>(ts.queue_wait_micros));
          span->End();
          done_count.fetch_add(1);
        });
  }

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (done_count.load() < kTasks &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  ASSERT_EQ(done_count.load(), kTasks);
  root->End();
  EXPECT_EQ(trace->open_spans(), 0);

  auto spans = trace->Collect();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kTasks) + 1);
  std::set<uint64_t> ids;
  for (const auto& s : spans) EXPECT_TRUE(ids.insert(s.span_id).second);
}

// ---------------------------------------------------------------------------
// Trace sink: sampling determinism and retention bounds
// ---------------------------------------------------------------------------

TEST(TraceSinkTest, SamplingIsDeterministicForSeed) {
  trace::TraceSink::Options opts;
  opts.sample_rate = 0.5;
  opts.seed = 7;
  trace::TraceSink a(opts);
  trace::TraceSink b(opts);
  std::vector<bool> seq_a, seq_b;
  for (int i = 0; i < 256; ++i) {
    seq_a.push_back(a.ShouldSample());
    seq_b.push_back(b.ShouldSample());
  }
  EXPECT_EQ(seq_a, seq_b);
  // At rate 0.5 over 256 draws, both outcomes occur.
  EXPECT_NE(std::count(seq_a.begin(), seq_a.end(), true), 0);
  EXPECT_NE(std::count(seq_a.begin(), seq_a.end(), false), 0);

  trace::TraceSink::Options other = opts;
  other.seed = 8;
  trace::TraceSink c(other);
  std::vector<bool> seq_c;
  for (int i = 0; i < 256; ++i) seq_c.push_back(c.ShouldSample());
  EXPECT_NE(seq_a, seq_c);
}

TEST(TraceSinkTest, RateZeroAndOneAreAbsolute) {
  trace::TraceSink::Options off;
  off.sample_rate = 0.0;
  trace::TraceSink none(off);
  trace::TraceSink::Options on;
  on.sample_rate = 1.0;
  trace::TraceSink all(on);
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(none.ShouldSample());
    EXPECT_TRUE(all.ShouldSample());
  }
}

TEST(TraceSinkTest, RingBoundEvictsOldest) {
  trace::TraceSink::Options opts;
  opts.max_traces = 2;
  trace::TraceSink sink(opts);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    trace::TracePtr t = trace::Trace::Make("q");
    t->StartSpan("query")->End();
    ids.push_back(t->trace_id());
    sink.Record(*t);
  }
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 1u);
  auto kept = sink.Traces();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].trace_id, ids[1]);
  EXPECT_EQ(kept[1].trace_id, ids[2]);
  sink.Clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSinkTest, DumpJsonContainsSpans) {
  trace::TraceSink sink;
  trace::TracePtr t = trace::Trace::Make("query");
  trace::SpanPtr root = t->StartSpan("query");
  root->SetTag("table", "items");
  root->End();
  sink.Record(*t);
  std::string json = sink.DumpJson();
  EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
  EXPECT_NE(json.find("\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"table\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: EXPLAIN ANALYZE, system.metrics, sink wiring, reconciliation
// ---------------------------------------------------------------------------

constexpr size_t kDim = 8;

class TelemetryE2E : public ::testing::Test {
 protected:
  void Start(core::BlendHouseOptions opts) {
    opts.ingest.max_segment_rows = 100;  // several segments per flush
    db_ = std::make_unique<core::BlendHouse>(opts);
    auto created = db_->ExecuteSql(
        "CREATE TABLE items (id Int64, attr Int64, emb Array(Float32),"
        " INDEX ann emb TYPE HNSW('DIM=8','M=8'));");
    ASSERT_TRUE(created.ok()) << created.status().ToString();
  }

  void Ingest(size_t n) {
    data_ = test::MakeClusteredVectors(n, kDim, 6, 7);
    std::vector<storage::Row> rows;
    for (size_t i = 0; i < n; ++i) {
      storage::Row row;
      row.values = {static_cast<int64_t>(i), static_cast<int64_t>(i % 100),
                    std::vector<float>(data_.begin() + i * kDim,
                                       data_.begin() + (i + 1) * kDim)};
      rows.push_back(std::move(row));
    }
    ASSERT_TRUE(db_->Insert("items", std::move(rows)).ok());
    ASSERT_TRUE(db_->Flush("items").ok());
  }

  std::string VecLiteral(const float* v) {
    std::string s = "[";
    for (size_t d = 0; d < kDim; ++d) {
      if (d > 0) s += ",";
      s += std::to_string(v[d]);
    }
    return s + "]";
  }

  std::string TopKSql(size_t qrow, int k, bool filtered) {
    std::string sql = "SELECT id, dist FROM items";
    if (filtered) sql += " WHERE attr < 50";
    sql += " ORDER BY L2Distance(emb, " + VecLiteral(data_.data() + qrow * kDim)
           + ") AS dist LIMIT " + std::to_string(k) + ";";
    return sql;
  }

  std::unique_ptr<core::BlendHouse> db_;
  std::vector<float> data_;
};

TEST_F(TelemetryE2E, ExplainAnalyzeRendersSpanTree) {
  Start(core::BlendHouseOptions::Fast());
  Ingest(400);
  auto result = db_->ExecuteSql("EXPLAIN ANALYZE " + TopKSql(3, 5, true));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->column_names.size(), 1u);
  EXPECT_EQ(result->column_names[0], "explain");
  std::string text;
  for (const auto& row : result->rows)
    text += std::get<std::string>(row.values[0]) + "\n";
  EXPECT_NE(text.find("rows=5"), std::string::npos);
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("plan"), std::string::npos);
  EXPECT_NE(text.find("execute"), std::string::npos);
  EXPECT_NE(text.find("segment_scan"), std::string::npos);
  EXPECT_NE(text.find("materialize"), std::string::npos);
}

TEST_F(TelemetryE2E, ExplainWithoutAnalyzeDoesNotExecute) {
  Start(core::BlendHouseOptions::Fast());
  Ingest(300);
  auto before = db_->trace_sink().size();
  auto result = db_->ExecuteSql("EXPLAIN " + TopKSql(0, 5, true));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->rows.empty());
  // Plain EXPLAIN reports the plan without running it: no trace retained,
  // no segment spans.
  EXPECT_EQ(db_->trace_sink().size(), before);
}

TEST_F(TelemetryE2E, SystemMetricsTableListsRegistry) {
  Start(core::BlendHouseOptions::Fast());
  Ingest(300);
  ASSERT_TRUE(db_->Query(TopKSql(0, 5, false)).ok());
  auto result = db_->Query("SELECT * FROM system.metrics;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->column_names, (std::vector<std::string>{"name", "value"}));
  ASSERT_FALSE(result->rows.empty());
  std::set<std::string> names;
  for (const auto& row : result->rows)
    names.insert(std::get<std::string>(row.values[0]));
  EXPECT_TRUE(names.count("bh_object_store_gets_total"));
  EXPECT_TRUE(names.count("bh_sql_queries_ann_total"));
  // Histograms expand into derived rows.
  EXPECT_TRUE(names.count("bh_sql_query_micros_count"));
  EXPECT_TRUE(names.count("bh_sql_query_micros_p95"));

  // Projection and WHERE pushdown work like any other table scan.
  auto filtered = db_->Query(
      "SELECT name FROM system.metrics WHERE name = "
      "'bh_sql_queries_ann_total';");
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  ASSERT_EQ(filtered->column_names, (std::vector<std::string>{"name"}));
  ASSERT_EQ(filtered->rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(filtered->rows[0].values[0]),
            "bh_sql_queries_ann_total");
}

TEST_F(TelemetryE2E, QueryCountersAndSinkRetention) {
  core::BlendHouseOptions opts = core::BlendHouseOptions::Fast();
  opts.trace.sample_rate = 1.0;
  Start(opts);
  Ingest(300);
  auto& reg = MetricsRegistry::Instance();
  uint64_t ann_before = reg.GetCounter("bh_sql_queries_ann_total")->Value();
  uint64_t fail_before = reg.GetCounter("bh_sql_query_failures_total")->Value();
  size_t sink_before = db_->trace_sink().size();

  ASSERT_TRUE(db_->Query(TopKSql(1, 5, false)).ok());
  ASSERT_TRUE(db_->Query(TopKSql(2, 5, true)).ok());
  EXPECT_FALSE(db_->Query("SELECT nonexistent FROM items ORDER BY "
                          "L2Distance(emb, [1,2,3,4,5,6,7,8]) LIMIT 3;")
                   .ok());

  EXPECT_EQ(reg.GetCounter("bh_sql_queries_ann_total")->Value(),
            ann_before + 3);
  EXPECT_GE(reg.GetCounter("bh_sql_query_failures_total")->Value(),
            fail_before + 1);
  // Tail-based retention keeps the failed query's trace too (always-keep
  // errors), on top of the two sampled successes.
  ASSERT_EQ(db_->trace_sink().size(), sink_before + 3);
  EXPECT_EQ(db_->trace_sink().retained_error(), 1u);

  // Each retained trace is a complete tree: one root named "query", and
  // every parent_id resolves to a span of the same trace.
  for (const auto& finished : db_->trace_sink().Traces()) {
    std::set<uint64_t> ids;
    size_t roots = 0;
    for (const auto& s : finished.spans) ids.insert(s.span_id);
    for (const auto& s : finished.spans) {
      if (s.parent_id == 0) {
        ++roots;
        EXPECT_EQ(s.name, "query");
      } else {
        EXPECT_TRUE(ids.count(s.parent_id))
            << s.name << " has dangling parent";
      }
    }
    EXPECT_EQ(roots, 1u);
    EXPECT_EQ(ids.size(), finished.spans.size());  // End() exactly once
  }
}

TEST_F(TelemetryE2E, SampleRateZeroRetainsNothing) {
  core::BlendHouseOptions opts = core::BlendHouseOptions::Fast();
  opts.trace.sample_rate = 0.0;
  Start(opts);
  Ingest(300);
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(db_->Query(TopKSql(i, 5, false)).ok());
  EXPECT_EQ(db_->trace_sink().size(), 0u);
  // EXPLAIN ANALYZE still sees a full trace — collection is forced, only
  // retention is sampled.
  auto text = db_->ExplainAnalyze(TopKSql(0, 5, false));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("segment_scan"), std::string::npos);
}

TEST_F(TelemetryE2E, RetriedQueryKeepsSpanTreeComplete) {
  core::BlendHouseOptions opts = core::BlendHouseOptions::Fast();
  opts.trace.sample_rate = 1.0;
  opts.read_workers = 3;
  Start(opts);
  Ingest(400);
  // Invalidate attempt 0's placement between assignment and dispatch: the
  // executor must fail the attempt cleanly and retry against the new
  // topology, with every span of the trace still closing exactly once.
  db_->SetExecutorTopologyHookForTest([this](size_t attempt) {
    if (attempt == 0) {
      // Replace the whole worker set so every worker in attempt 0's
      // assignment is gone by dispatch time.
      std::vector<std::string> old_ids;
      for (auto* w : db_->read_vw().workers()) old_ids.push_back(w->id());
      ASSERT_NE(db_->AddReadWorker(), nullptr);
      ASSERT_NE(db_->AddReadWorker(), nullptr);
      for (const auto& id : old_ids)
        ASSERT_TRUE(db_->RemoveReadWorker(id).ok());
    }
  });
  auto result = db_->Query(TopKSql(4, 5, false));
  db_->SetExecutorTopologyHookForTest(nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 5u);
  EXPECT_GE(result->stats.retries, 1u);

  ASSERT_GE(db_->trace_sink().size(), 1u);
  auto finished = db_->trace_sink().Traces().back();
  std::set<uint64_t> ids;
  size_t scans = 0;
  bool saw_retry_tag = false;
  for (const auto& s : finished.spans) {
    EXPECT_TRUE(ids.insert(s.span_id).second);
    if (s.name == "segment_scan") {
      ++scans;
      for (const auto& [k, v] : s.tags)
        if (k == "attempt" && v != "0") saw_retry_tag = true;
    }
  }
  EXPECT_GT(scans, 0u);
  EXPECT_TRUE(saw_retry_tag);
}

// The acceptance check: on a hybrid top-k over a multi-worker warehouse with
// storage latency simulation on, the per-span simulated-I/O totals reconcile
// with the object store's registry counter. Every charge happens inside a
// DeferredChargeScope attributed to exactly one of {plan, segment_scan,
// materialize}, so the disjoint span sum equals the counter delta.
TEST_F(TelemetryE2E, SpanSimIoReconcilesWithObjectStoreCounter) {
  core::BlendHouseOptions opts;
  opts.remote_cost = storage::StorageCostModel{100, 1e6, true};
  opts.rpc_cost.simulate_latency = false;
  opts.worker.cache.disk_cost = storage::StorageCostModel::Instant();
  opts.settings.acquire.force_local_load = true;  // all I/O hits the store
  opts.read_workers = 3;
  opts.trace.sample_rate = 1.0;
  Start(opts);
  Ingest(500);

  auto* counter = MetricsRegistry::Instance().GetCounter(
      "bh_object_store_sim_latency_micros_total");
  uint64_t counter_before = counter->Value();
  uint64_t store_before =
      db_->object_store().stats().sim_latency_micros.load();

  auto result = db_->Query(TopKSql(9, 10, /*filtered=*/true));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 10u);

  uint64_t counter_delta = counter->Value() - counter_before;
  uint64_t store_delta =
      db_->object_store().stats().sim_latency_micros.load() - store_before;
  ASSERT_GT(counter_delta, 0u);
  EXPECT_EQ(counter_delta, store_delta);  // registry mirrors the store

  ASSERT_GE(db_->trace_sink().size(), 1u);
  auto finished = db_->trace_sink().Traces().back();
  double span_sim = 0;
  size_t scans = 0;
  for (const auto& s : finished.spans) {
    if (s.name == "plan" || s.name == "segment_scan" || s.name == "materialize")
      span_sim += s.sim_io_micros;
    if (s.name == "segment_scan") ++scans;
  }
  EXPECT_EQ(scans, 5u);  // 500 rows / 100-row segments
  EXPECT_NEAR(span_sim, static_cast<double>(counter_delta), 0.5);
  // The query's own async stats agree with its spans too.
  EXPECT_NEAR(result->stats.sim_io_micros + [&] {
    double plan_and_mat = 0;
    for (const auto& s : finished.spans)
      if (s.name == "plan") plan_and_mat += s.sim_io_micros;
    return plan_and_mat;
  }(), span_sim, 0.5);
}

}  // namespace
}  // namespace blendhouse
