// Dynamic lock-rank checker tests (DESIGN.md §11).
//
// The death tests only run when the checker is compiled in
// (BLENDHOUSE_LOCK_RANK_CHECKS: Debug/sanitizer presets or
// -DBLENDHOUSE_LOCK_RANKS=ON); in plain Release builds they GTEST_SKIP,
// proving the checks compile out. The rank-order regression tests run in
// every configuration — they pin the documented hierarchy itself, which
// exists independently of the runtime checker.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/future.h"
#include "common/lock_rank.h"
#include "common/mutex.h"

namespace lockrank = blendhouse::common::lockrank;
using blendhouse::common::CondVar;
using blendhouse::common::Future;
using blendhouse::common::Mutex;
using blendhouse::common::MutexLock;
using blendhouse::common::Promise;

namespace {

#if defined(BLENDHOUSE_LOCK_RANK_CHECKS)
constexpr bool kChecksCompiledIn = true;
#else
constexpr bool kChecksCompiledIn = false;
#endif

#define SKIP_IF_CHECKS_COMPILED_OUT()                                     \
  do {                                                                    \
    if (!kChecksCompiledIn)                                               \
      GTEST_SKIP() << "BLENDHOUSE_LOCK_RANK_CHECKS not compiled in "      \
                      "(release build); rank checking is zero-cost here"; \
  } while (0)

class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Death tests fork; the default "fast" style is unsafe once any test in
    // the binary has started threads (the CondVar test does).
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(LockRankTest, MonotoneAcquisitionSucceeds) {
  SKIP_IF_CHECKS_COMPILED_OUT();
  Mutex outer{lockrank::kVirtualWarehouse};
  Mutex inner{lockrank::kLruCache};
  EXPECT_EQ(lockrank::HeldDepthForTest(), 0);
  {
    MutexLock o(outer);
    EXPECT_EQ(lockrank::HeldDepthForTest(), 1);
    EXPECT_EQ(lockrank::MinHeldRankForTest(), lockrank::kVirtualWarehouse);
    {
      MutexLock i(inner);
      EXPECT_EQ(lockrank::HeldDepthForTest(), 2);
      EXPECT_EQ(lockrank::MinHeldRankForTest(), lockrank::kLruCache);
    }
    EXPECT_EQ(lockrank::HeldDepthForTest(), 1);
  }
  EXPECT_EQ(lockrank::HeldDepthForTest(), 0);
}

TEST_F(LockRankTest, OutOfOrderAcquisitionDies) {
  SKIP_IF_CHECKS_COMPILED_OUT();
  EXPECT_DEATH(
      {
        Mutex inner{lockrank::kLruCache};
        Mutex outer{lockrank::kVirtualWarehouse};
        MutexLock i(inner);
        MutexLock o(outer);  // 800 acquired while holding 250: inversion
      },
      "lock-rank violation");
}

TEST_F(LockRankTest, EqualRankAcquisitionDies) {
  SKIP_IF_CHECKS_COMPILED_OUT();
  // Two locks of the same rank may not nest: "strictly decreasing" is what
  // makes the global order total. (Same-band locks — e.g. two LruCaches —
  // must never be held together; HierarchicalIndexCache walks tiers
  // sequentially for exactly this reason.)
  EXPECT_DEATH(
      {
        Mutex a{lockrank::kLruCache};
        Mutex b{lockrank::kLruCache};
        MutexLock la(a);
        MutexLock lb(b);
      },
      "lock-rank violation");
}

TEST_F(LockRankTest, CallbackUnderLockDies) {
  SKIP_IF_CHECKS_COMPILED_OUT();
  EXPECT_DEATH(
      {
        Mutex mu{lockrank::kQueryFanIn};
        MutexLock lock(mu);
        lockrank::AssertNoneHeld("test callback");
      },
      "callback-under-lock");
}

TEST_F(LockRankTest, InlineContinuationUnderLockDies) {
  SKIP_IF_CHECKS_COMPILED_OUT();
  // The PR5 RemoveWorker shape, reproduced end to end: fulfilling a promise
  // whose continuation runs inline, while still inside a critical section.
  // The guard in FutureState::Set fires before the continuation can deadlock.
  EXPECT_DEATH(
      {
        Promise<int> p;
        Future<int> f = p.GetFuture();
        f.Then(nullptr, [](int) {});  // no scheduler: runs inline on Set
        Mutex mu{lockrank::kQueryFanIn};
        MutexLock lock(mu);
        p.SetValue(7);
      },
      "callback-under-lock");
}

TEST_F(LockRankTest, CondVarWaitPopsAndRepushesRank) {
  SKIP_IF_CHECKS_COMPILED_OUT();
  // Waiting atomically releases the mutex, so its rank must leave the held
  // stack for the duration — otherwise the wake-up's re-acquisition would
  // look like a self-inversion. A timed wait exercises both halves.
  Mutex outer{lockrank::kVirtualWarehouse};
  Mutex inner{lockrank::kQueryFanIn};
  CondVar cv;
  MutexLock o(outer);
  MutexLock i(inner);
  EXPECT_EQ(lockrank::HeldDepthForTest(), 2);
  cv.WaitUntil(inner, std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(1));
  EXPECT_EQ(lockrank::HeldDepthForTest(), 2);
  EXPECT_EQ(lockrank::MinHeldRankForTest(), lockrank::kQueryFanIn);
}

TEST_F(LockRankTest, WaitingOnNonInnermostLockDies) {
  SKIP_IF_CHECKS_COMPILED_OUT();
  // Waiting on `outer` while also holding `inner` releases the locks out of
  // order: the thread would sleep holding the lower rank and re-acquire the
  // higher one on wake — an inversion against any peer taking outer→inner.
  EXPECT_DEATH(
      {
        Mutex outer{lockrank::kVirtualWarehouse};
        Mutex inner{lockrank::kQueryFanIn};
        CondVar cv;
        MutexLock o(outer);
        MutexLock i(inner);
        cv.WaitUntil(outer, std::chrono::steady_clock::now() +
                                std::chrono::milliseconds(1));
      },
      "lock-rank violation");
}

// ---- Rank-order regression (runs in every build configuration) ------------
//
// Pins the documented hierarchy from lock_rank.h so a rank renumbering that
// silently reorders layers fails here, not in a production deadlock. The
// relations mirror the acquisition edges tools/lockgraph.py finds on the
// real tree.

TEST(LockRankOrderTest, WarehouseAboveWorkerInternals) {
  // Scale events construct/destroy workers under vw->mu_, touching every
  // worker-internal lock below it.
  EXPECT_GT(lockrank::kVirtualWarehouse, lockrank::kLruCache);
  EXPECT_GT(lockrank::kVirtualWarehouse, lockrank::kThreadPool);
  EXPECT_GT(lockrank::kVirtualWarehouse, lockrank::kTaskScheduler);
  EXPECT_GT(lockrank::kVirtualWarehouse, lockrank::kMetricsRegistry);
  EXPECT_GT(lockrank::kVirtualWarehouse, lockrank::kObjectStore);
}

TEST(LockRankOrderTest, CatalogIsOutermost) {
  EXPECT_GT(lockrank::kCatalog, lockrank::kVirtualWarehouse);
  EXPECT_GT(lockrank::kCatalog, lockrank::kPlanCache);
  EXPECT_GT(lockrank::kCatalog, lockrank::kLsmFlush);
}

TEST(LockRankOrderTest, StorageFlushAboveItsCommitLocks) {
  // flush_mu_ is held across version commits, partitioner publishes,
  // object-store writes, pool submits, and sync latency charges.
  EXPECT_GT(lockrank::kLsmFlush, lockrank::kVersionSet);
  EXPECT_GT(lockrank::kLsmFlush, lockrank::kLsmPartitioner);
  EXPECT_GT(lockrank::kLsmFlush, lockrank::kObjectStore);
  EXPECT_GT(lockrank::kLsmFlush, lockrank::kThreadPool);
  EXPECT_GT(lockrank::kLsmFlush, lockrank::kSimWait);
}

TEST(LockRankOrderTest, FanInAboveFutureAndLeaves) {
  // Fan-in folds complete promises (kFuture) only after release, but their
  // critical sections may touch metrics and caches.
  EXPECT_GT(lockrank::kQueryFanIn, lockrank::kFuture);
  EXPECT_GT(lockrank::kFuture, lockrank::kThreadPool);
  EXPECT_GT(lockrank::kFuture, lockrank::kTaskScheduler);
  EXPECT_GT(lockrank::kTableStats, lockrank::kObjectStore);
  EXPECT_GT(lockrank::kTableStats, lockrank::kSimWait);
  EXPECT_GT(lockrank::kObjectStore, lockrank::kSimWait);
}

TEST(LockRankOrderTest, ShardFamiliesBelowTheirEventcounts) {
  // The shard-per-core engine (DESIGN.md §12): each pool/scheduler worker
  // owns a shard mutex; all siblings share one rank so the equal-rank check
  // forbids nesting (work stealing holds at most one shard lock). The
  // eventcount mutex of each substrate sits above its shard family — a
  // parked thread never holds a shard lock, and Submit/Schedule release the
  // shard before notifying.
  EXPECT_GT(lockrank::kThreadPool, lockrank::kThreadPoolShard);
  EXPECT_GT(lockrank::kTaskScheduler, lockrank::kSchedulerShard);
  // The pool shard family sits above the whole scheduler substrate: a pool
  // task may schedule completions, never the reverse while holding a shard.
  EXPECT_GT(lockrank::kThreadPoolShard, lockrank::kTaskScheduler);
  // Existing outer locks that submit work stay above the new shard ranks.
  EXPECT_GT(lockrank::kLsmFlush, lockrank::kThreadPoolShard);
  EXPECT_GT(lockrank::kVirtualWarehouse, lockrank::kThreadPoolShard);
  EXPECT_GT(lockrank::kVirtualWarehouse, lockrank::kSchedulerShard);
  EXPECT_GT(lockrank::kFuture, lockrank::kSchedulerShard);
  // Shard critical sections update gauges under the lock (the queue-depth
  // fix), so metrics must stay below both families.
  EXPECT_GT(lockrank::kThreadPoolShard, lockrank::kMetricsRegistry);
  EXPECT_GT(lockrank::kSchedulerShard, lockrank::kMetricsRegistry);
}

TEST(LockRankOrderTest, RankNamesRoundTrip) {
  EXPECT_STREQ(lockrank::RankName(lockrank::kVirtualWarehouse),
               "kVirtualWarehouse(800)");
  EXPECT_STREQ(lockrank::RankName(lockrank::kThreadPoolShard),
               "kThreadPoolShard(195)");
  EXPECT_STREQ(lockrank::RankName(lockrank::kSchedulerShard),
               "kSchedulerShard(175)");
  EXPECT_STREQ(lockrank::RankName(lockrank::kUnranked), "unranked");
  // Unknown values render numerically rather than aborting.
  EXPECT_STREQ(lockrank::RankName(123456), "rank(123456)");
}

}  // namespace
