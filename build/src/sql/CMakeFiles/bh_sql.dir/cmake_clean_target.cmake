file(REMOVE_RECURSE
  "libbh_sql.a"
)
