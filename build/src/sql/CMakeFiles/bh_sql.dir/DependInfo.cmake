
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/cost_model.cc" "src/sql/CMakeFiles/bh_sql.dir/cost_model.cc.o" "gcc" "src/sql/CMakeFiles/bh_sql.dir/cost_model.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/sql/CMakeFiles/bh_sql.dir/executor.cc.o" "gcc" "src/sql/CMakeFiles/bh_sql.dir/executor.cc.o.d"
  "/root/repo/src/sql/expression.cc" "src/sql/CMakeFiles/bh_sql.dir/expression.cc.o" "gcc" "src/sql/CMakeFiles/bh_sql.dir/expression.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/sql/CMakeFiles/bh_sql.dir/lexer.cc.o" "gcc" "src/sql/CMakeFiles/bh_sql.dir/lexer.cc.o.d"
  "/root/repo/src/sql/logical_plan.cc" "src/sql/CMakeFiles/bh_sql.dir/logical_plan.cc.o" "gcc" "src/sql/CMakeFiles/bh_sql.dir/logical_plan.cc.o.d"
  "/root/repo/src/sql/optimizer.cc" "src/sql/CMakeFiles/bh_sql.dir/optimizer.cc.o" "gcc" "src/sql/CMakeFiles/bh_sql.dir/optimizer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/bh_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/bh_sql.dir/parser.cc.o.d"
  "/root/repo/src/sql/plan_cache.cc" "src/sql/CMakeFiles/bh_sql.dir/plan_cache.cc.o" "gcc" "src/sql/CMakeFiles/bh_sql.dir/plan_cache.cc.o.d"
  "/root/repo/src/sql/statistics.cc" "src/sql/CMakeFiles/bh_sql.dir/statistics.cc.o" "gcc" "src/sql/CMakeFiles/bh_sql.dir/statistics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vecindex/CMakeFiles/bh_vecindex.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/bh_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/bh_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
