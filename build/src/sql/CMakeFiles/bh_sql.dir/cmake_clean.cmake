file(REMOVE_RECURSE
  "CMakeFiles/bh_sql.dir/cost_model.cc.o"
  "CMakeFiles/bh_sql.dir/cost_model.cc.o.d"
  "CMakeFiles/bh_sql.dir/executor.cc.o"
  "CMakeFiles/bh_sql.dir/executor.cc.o.d"
  "CMakeFiles/bh_sql.dir/expression.cc.o"
  "CMakeFiles/bh_sql.dir/expression.cc.o.d"
  "CMakeFiles/bh_sql.dir/lexer.cc.o"
  "CMakeFiles/bh_sql.dir/lexer.cc.o.d"
  "CMakeFiles/bh_sql.dir/logical_plan.cc.o"
  "CMakeFiles/bh_sql.dir/logical_plan.cc.o.d"
  "CMakeFiles/bh_sql.dir/optimizer.cc.o"
  "CMakeFiles/bh_sql.dir/optimizer.cc.o.d"
  "CMakeFiles/bh_sql.dir/parser.cc.o"
  "CMakeFiles/bh_sql.dir/parser.cc.o.d"
  "CMakeFiles/bh_sql.dir/plan_cache.cc.o"
  "CMakeFiles/bh_sql.dir/plan_cache.cc.o.d"
  "CMakeFiles/bh_sql.dir/statistics.cc.o"
  "CMakeFiles/bh_sql.dir/statistics.cc.o.d"
  "libbh_sql.a"
  "libbh_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
