# Empty dependencies file for bh_sql.
# This may be replaced when dependencies are built.
