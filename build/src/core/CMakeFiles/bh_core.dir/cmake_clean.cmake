file(REMOVE_RECURSE
  "CMakeFiles/bh_core.dir/blendhouse.cc.o"
  "CMakeFiles/bh_core.dir/blendhouse.cc.o.d"
  "libbh_core.a"
  "libbh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
