# Empty dependencies file for bh_storage.
# This may be replaced when dependencies are built.
