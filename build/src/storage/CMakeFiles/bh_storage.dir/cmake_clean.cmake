file(REMOVE_RECURSE
  "CMakeFiles/bh_storage.dir/column.cc.o"
  "CMakeFiles/bh_storage.dir/column.cc.o.d"
  "CMakeFiles/bh_storage.dir/lsm_engine.cc.o"
  "CMakeFiles/bh_storage.dir/lsm_engine.cc.o.d"
  "CMakeFiles/bh_storage.dir/object_store.cc.o"
  "CMakeFiles/bh_storage.dir/object_store.cc.o.d"
  "CMakeFiles/bh_storage.dir/partitioner.cc.o"
  "CMakeFiles/bh_storage.dir/partitioner.cc.o.d"
  "CMakeFiles/bh_storage.dir/segment.cc.o"
  "CMakeFiles/bh_storage.dir/segment.cc.o.d"
  "CMakeFiles/bh_storage.dir/version.cc.o"
  "CMakeFiles/bh_storage.dir/version.cc.o.d"
  "libbh_storage.a"
  "libbh_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
