file(REMOVE_RECURSE
  "libbh_storage.a"
)
