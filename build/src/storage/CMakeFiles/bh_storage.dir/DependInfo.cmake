
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/column.cc" "src/storage/CMakeFiles/bh_storage.dir/column.cc.o" "gcc" "src/storage/CMakeFiles/bh_storage.dir/column.cc.o.d"
  "/root/repo/src/storage/lsm_engine.cc" "src/storage/CMakeFiles/bh_storage.dir/lsm_engine.cc.o" "gcc" "src/storage/CMakeFiles/bh_storage.dir/lsm_engine.cc.o.d"
  "/root/repo/src/storage/object_store.cc" "src/storage/CMakeFiles/bh_storage.dir/object_store.cc.o" "gcc" "src/storage/CMakeFiles/bh_storage.dir/object_store.cc.o.d"
  "/root/repo/src/storage/partitioner.cc" "src/storage/CMakeFiles/bh_storage.dir/partitioner.cc.o" "gcc" "src/storage/CMakeFiles/bh_storage.dir/partitioner.cc.o.d"
  "/root/repo/src/storage/segment.cc" "src/storage/CMakeFiles/bh_storage.dir/segment.cc.o" "gcc" "src/storage/CMakeFiles/bh_storage.dir/segment.cc.o.d"
  "/root/repo/src/storage/version.cc" "src/storage/CMakeFiles/bh_storage.dir/version.cc.o" "gcc" "src/storage/CMakeFiles/bh_storage.dir/version.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vecindex/CMakeFiles/bh_vecindex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
