file(REMOVE_RECURSE
  "libbh_cluster.a"
)
