
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/consistent_hash.cc" "src/cluster/CMakeFiles/bh_cluster.dir/consistent_hash.cc.o" "gcc" "src/cluster/CMakeFiles/bh_cluster.dir/consistent_hash.cc.o.d"
  "/root/repo/src/cluster/index_cache.cc" "src/cluster/CMakeFiles/bh_cluster.dir/index_cache.cc.o" "gcc" "src/cluster/CMakeFiles/bh_cluster.dir/index_cache.cc.o.d"
  "/root/repo/src/cluster/scheduler.cc" "src/cluster/CMakeFiles/bh_cluster.dir/scheduler.cc.o" "gcc" "src/cluster/CMakeFiles/bh_cluster.dir/scheduler.cc.o.d"
  "/root/repo/src/cluster/virtual_warehouse.cc" "src/cluster/CMakeFiles/bh_cluster.dir/virtual_warehouse.cc.o" "gcc" "src/cluster/CMakeFiles/bh_cluster.dir/virtual_warehouse.cc.o.d"
  "/root/repo/src/cluster/worker.cc" "src/cluster/CMakeFiles/bh_cluster.dir/worker.cc.o" "gcc" "src/cluster/CMakeFiles/bh_cluster.dir/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vecindex/CMakeFiles/bh_vecindex.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/bh_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
