# Empty compiler generated dependencies file for bh_cluster.
# This may be replaced when dependencies are built.
