file(REMOVE_RECURSE
  "CMakeFiles/bh_cluster.dir/consistent_hash.cc.o"
  "CMakeFiles/bh_cluster.dir/consistent_hash.cc.o.d"
  "CMakeFiles/bh_cluster.dir/index_cache.cc.o"
  "CMakeFiles/bh_cluster.dir/index_cache.cc.o.d"
  "CMakeFiles/bh_cluster.dir/scheduler.cc.o"
  "CMakeFiles/bh_cluster.dir/scheduler.cc.o.d"
  "CMakeFiles/bh_cluster.dir/virtual_warehouse.cc.o"
  "CMakeFiles/bh_cluster.dir/virtual_warehouse.cc.o.d"
  "CMakeFiles/bh_cluster.dir/worker.cc.o"
  "CMakeFiles/bh_cluster.dir/worker.cc.o.d"
  "libbh_cluster.a"
  "libbh_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
