file(REMOVE_RECURSE
  "CMakeFiles/bh_common.dir/histogram.cc.o"
  "CMakeFiles/bh_common.dir/histogram.cc.o.d"
  "CMakeFiles/bh_common.dir/logging.cc.o"
  "CMakeFiles/bh_common.dir/logging.cc.o.d"
  "CMakeFiles/bh_common.dir/status.cc.o"
  "CMakeFiles/bh_common.dir/status.cc.o.d"
  "CMakeFiles/bh_common.dir/threadpool.cc.o"
  "CMakeFiles/bh_common.dir/threadpool.cc.o.d"
  "libbh_common.a"
  "libbh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
