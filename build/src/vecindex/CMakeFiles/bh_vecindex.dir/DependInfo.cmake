
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vecindex/auto_index.cc" "src/vecindex/CMakeFiles/bh_vecindex.dir/auto_index.cc.o" "gcc" "src/vecindex/CMakeFiles/bh_vecindex.dir/auto_index.cc.o.d"
  "/root/repo/src/vecindex/diskann_index.cc" "src/vecindex/CMakeFiles/bh_vecindex.dir/diskann_index.cc.o" "gcc" "src/vecindex/CMakeFiles/bh_vecindex.dir/diskann_index.cc.o.d"
  "/root/repo/src/vecindex/distance.cc" "src/vecindex/CMakeFiles/bh_vecindex.dir/distance.cc.o" "gcc" "src/vecindex/CMakeFiles/bh_vecindex.dir/distance.cc.o.d"
  "/root/repo/src/vecindex/flat_index.cc" "src/vecindex/CMakeFiles/bh_vecindex.dir/flat_index.cc.o" "gcc" "src/vecindex/CMakeFiles/bh_vecindex.dir/flat_index.cc.o.d"
  "/root/repo/src/vecindex/generic_iterator.cc" "src/vecindex/CMakeFiles/bh_vecindex.dir/generic_iterator.cc.o" "gcc" "src/vecindex/CMakeFiles/bh_vecindex.dir/generic_iterator.cc.o.d"
  "/root/repo/src/vecindex/hnsw_index.cc" "src/vecindex/CMakeFiles/bh_vecindex.dir/hnsw_index.cc.o" "gcc" "src/vecindex/CMakeFiles/bh_vecindex.dir/hnsw_index.cc.o.d"
  "/root/repo/src/vecindex/index.cc" "src/vecindex/CMakeFiles/bh_vecindex.dir/index.cc.o" "gcc" "src/vecindex/CMakeFiles/bh_vecindex.dir/index.cc.o.d"
  "/root/repo/src/vecindex/index_factory.cc" "src/vecindex/CMakeFiles/bh_vecindex.dir/index_factory.cc.o" "gcc" "src/vecindex/CMakeFiles/bh_vecindex.dir/index_factory.cc.o.d"
  "/root/repo/src/vecindex/ivf_index.cc" "src/vecindex/CMakeFiles/bh_vecindex.dir/ivf_index.cc.o" "gcc" "src/vecindex/CMakeFiles/bh_vecindex.dir/ivf_index.cc.o.d"
  "/root/repo/src/vecindex/kmeans.cc" "src/vecindex/CMakeFiles/bh_vecindex.dir/kmeans.cc.o" "gcc" "src/vecindex/CMakeFiles/bh_vecindex.dir/kmeans.cc.o.d"
  "/root/repo/src/vecindex/pq.cc" "src/vecindex/CMakeFiles/bh_vecindex.dir/pq.cc.o" "gcc" "src/vecindex/CMakeFiles/bh_vecindex.dir/pq.cc.o.d"
  "/root/repo/src/vecindex/quantizer.cc" "src/vecindex/CMakeFiles/bh_vecindex.dir/quantizer.cc.o" "gcc" "src/vecindex/CMakeFiles/bh_vecindex.dir/quantizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
