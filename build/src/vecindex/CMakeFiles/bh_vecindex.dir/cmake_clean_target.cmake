file(REMOVE_RECURSE
  "libbh_vecindex.a"
)
