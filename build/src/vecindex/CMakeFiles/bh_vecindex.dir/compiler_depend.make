# Empty compiler generated dependencies file for bh_vecindex.
# This may be replaced when dependencies are built.
