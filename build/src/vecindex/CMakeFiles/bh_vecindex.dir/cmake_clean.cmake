file(REMOVE_RECURSE
  "CMakeFiles/bh_vecindex.dir/auto_index.cc.o"
  "CMakeFiles/bh_vecindex.dir/auto_index.cc.o.d"
  "CMakeFiles/bh_vecindex.dir/diskann_index.cc.o"
  "CMakeFiles/bh_vecindex.dir/diskann_index.cc.o.d"
  "CMakeFiles/bh_vecindex.dir/distance.cc.o"
  "CMakeFiles/bh_vecindex.dir/distance.cc.o.d"
  "CMakeFiles/bh_vecindex.dir/flat_index.cc.o"
  "CMakeFiles/bh_vecindex.dir/flat_index.cc.o.d"
  "CMakeFiles/bh_vecindex.dir/generic_iterator.cc.o"
  "CMakeFiles/bh_vecindex.dir/generic_iterator.cc.o.d"
  "CMakeFiles/bh_vecindex.dir/hnsw_index.cc.o"
  "CMakeFiles/bh_vecindex.dir/hnsw_index.cc.o.d"
  "CMakeFiles/bh_vecindex.dir/index.cc.o"
  "CMakeFiles/bh_vecindex.dir/index.cc.o.d"
  "CMakeFiles/bh_vecindex.dir/index_factory.cc.o"
  "CMakeFiles/bh_vecindex.dir/index_factory.cc.o.d"
  "CMakeFiles/bh_vecindex.dir/ivf_index.cc.o"
  "CMakeFiles/bh_vecindex.dir/ivf_index.cc.o.d"
  "CMakeFiles/bh_vecindex.dir/kmeans.cc.o"
  "CMakeFiles/bh_vecindex.dir/kmeans.cc.o.d"
  "CMakeFiles/bh_vecindex.dir/pq.cc.o"
  "CMakeFiles/bh_vecindex.dir/pq.cc.o.d"
  "CMakeFiles/bh_vecindex.dir/quantizer.cc.o"
  "CMakeFiles/bh_vecindex.dir/quantizer.cc.o.d"
  "libbh_vecindex.a"
  "libbh_vecindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_vecindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
