file(REMOVE_RECURSE
  "libbh_baselines.a"
)
