# Empty dependencies file for bh_baselines.
# This may be replaced when dependencies are built.
