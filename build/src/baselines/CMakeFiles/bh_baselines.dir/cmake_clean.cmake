file(REMOVE_RECURSE
  "CMakeFiles/bh_baselines.dir/blendhouse_system.cc.o"
  "CMakeFiles/bh_baselines.dir/blendhouse_system.cc.o.d"
  "CMakeFiles/bh_baselines.dir/dataset.cc.o"
  "CMakeFiles/bh_baselines.dir/dataset.cc.o.d"
  "CMakeFiles/bh_baselines.dir/milvus_sim.cc.o"
  "CMakeFiles/bh_baselines.dir/milvus_sim.cc.o.d"
  "CMakeFiles/bh_baselines.dir/pgvector_sim.cc.o"
  "CMakeFiles/bh_baselines.dir/pgvector_sim.cc.o.d"
  "libbh_baselines.a"
  "libbh_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
