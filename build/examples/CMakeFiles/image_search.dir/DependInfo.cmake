
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/image_search.cpp" "examples/CMakeFiles/image_search.dir/image_search.cpp.o" "gcc" "examples/CMakeFiles/image_search.dir/image_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/bh_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/bh_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/bh_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/bh_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/vecindex/CMakeFiles/bh_vecindex.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
