file(REMOVE_RECURSE
  "CMakeFiles/rag_filtered_search.dir/rag_filtered_search.cpp.o"
  "CMakeFiles/rag_filtered_search.dir/rag_filtered_search.cpp.o.d"
  "rag_filtered_search"
  "rag_filtered_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rag_filtered_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
