# Empty compiler generated dependencies file for rag_filtered_search.
# This may be replaced when dependencies are built.
