# Empty compiler generated dependencies file for fig18_elasticity.
# This may be replaced when dependencies are built.
