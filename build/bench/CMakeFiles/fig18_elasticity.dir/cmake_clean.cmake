file(REMOVE_RECURSE
  "CMakeFiles/fig18_elasticity.dir/fig18_elasticity.cc.o"
  "CMakeFiles/fig18_elasticity.dir/fig18_elasticity.cc.o.d"
  "fig18_elasticity"
  "fig18_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
