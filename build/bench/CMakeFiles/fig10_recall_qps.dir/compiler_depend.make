# Empty compiler generated dependencies file for fig10_recall_qps.
# This may be replaced when dependencies are built.
