file(REMOVE_RECURSE
  "CMakeFiles/fig10_recall_qps.dir/fig10_recall_qps.cc.o"
  "CMakeFiles/fig10_recall_qps.dir/fig10_recall_qps.cc.o.d"
  "fig10_recall_qps"
  "fig10_recall_qps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_recall_qps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
