# Empty compiler generated dependencies file for fig11_cache_miss.
# This may be replaced when dependencies are built.
