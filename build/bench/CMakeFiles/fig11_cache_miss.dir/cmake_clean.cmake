file(REMOVE_RECURSE
  "CMakeFiles/fig11_cache_miss.dir/fig11_cache_miss.cc.o"
  "CMakeFiles/fig11_cache_miss.dir/fig11_cache_miss.cc.o.d"
  "fig11_cache_miss"
  "fig11_cache_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cache_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
