# Empty compiler generated dependencies file for fig17_workload_opts.
# This may be replaced when dependencies are built.
