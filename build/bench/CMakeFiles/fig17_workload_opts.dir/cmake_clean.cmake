file(REMOVE_RECURSE
  "CMakeFiles/fig17_workload_opts.dir/fig17_workload_opts.cc.o"
  "CMakeFiles/fig17_workload_opts.dir/fig17_workload_opts.cc.o.d"
  "fig17_workload_opts"
  "fig17_workload_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_workload_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
