file(REMOVE_RECURSE
  "CMakeFiles/table07_production.dir/table07_production.cc.o"
  "CMakeFiles/table07_production.dir/table07_production.cc.o.d"
  "table07_production"
  "table07_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
