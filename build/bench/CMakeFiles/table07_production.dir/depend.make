# Empty dependencies file for table07_production.
# This may be replaced when dependencies are built.
