# Empty compiler generated dependencies file for table05_index_load.
# This may be replaced when dependencies are built.
