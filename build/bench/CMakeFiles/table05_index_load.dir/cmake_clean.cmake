file(REMOVE_RECURSE
  "CMakeFiles/table05_index_load.dir/table05_index_load.cc.o"
  "CMakeFiles/table05_index_load.dir/table05_index_load.cc.o.d"
  "table05_index_load"
  "table05_index_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_index_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
