file(REMOVE_RECURSE
  "CMakeFiles/fig09_qps_recall99.dir/fig09_qps_recall99.cc.o"
  "CMakeFiles/fig09_qps_recall99.dir/fig09_qps_recall99.cc.o.d"
  "fig09_qps_recall99"
  "fig09_qps_recall99.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_qps_recall99.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
