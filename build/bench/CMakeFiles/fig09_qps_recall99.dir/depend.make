# Empty dependencies file for fig09_qps_recall99.
# This may be replaced when dependencies are built.
