# Empty compiler generated dependencies file for fig07_auto_index.
# This may be replaced when dependencies are built.
