file(REMOVE_RECURSE
  "CMakeFiles/fig07_auto_index.dir/fig07_auto_index.cc.o"
  "CMakeFiles/fig07_auto_index.dir/fig07_auto_index.cc.o.d"
  "fig07_auto_index"
  "fig07_auto_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_auto_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
