# Empty compiler generated dependencies file for table06_index_memory.
# This may be replaced when dependencies are built.
