file(REMOVE_RECURSE
  "CMakeFiles/table06_index_memory.dir/table06_index_memory.cc.o"
  "CMakeFiles/table06_index_memory.dir/table06_index_memory.cc.o.d"
  "table06_index_memory"
  "table06_index_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_index_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
