# Empty dependencies file for fig14_update_compaction.
# This may be replaced when dependencies are built.
