file(REMOVE_RECURSE
  "CMakeFiles/fig14_update_compaction.dir/fig14_update_compaction.cc.o"
  "CMakeFiles/fig14_update_compaction.dir/fig14_update_compaction.cc.o.d"
  "fig14_update_compaction"
  "fig14_update_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_update_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
