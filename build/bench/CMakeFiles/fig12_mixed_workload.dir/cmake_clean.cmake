file(REMOVE_RECURSE
  "CMakeFiles/fig12_mixed_workload.dir/fig12_mixed_workload.cc.o"
  "CMakeFiles/fig12_mixed_workload.dir/fig12_mixed_workload.cc.o.d"
  "fig12_mixed_workload"
  "fig12_mixed_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_mixed_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
