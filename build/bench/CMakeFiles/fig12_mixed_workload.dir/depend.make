# Empty dependencies file for fig12_mixed_workload.
# This may be replaced when dependencies are built.
