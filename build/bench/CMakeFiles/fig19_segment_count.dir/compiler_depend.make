# Empty compiler generated dependencies file for fig19_segment_count.
# This may be replaced when dependencies are built.
