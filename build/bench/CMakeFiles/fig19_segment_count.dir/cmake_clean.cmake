file(REMOVE_RECURSE
  "CMakeFiles/fig19_segment_count.dir/fig19_segment_count.cc.o"
  "CMakeFiles/fig19_segment_count.dir/fig19_segment_count.cc.o.d"
  "fig19_segment_count"
  "fig19_segment_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_segment_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
