# Empty dependencies file for fig13_index_recall_qps.
# This may be replaced when dependencies are built.
