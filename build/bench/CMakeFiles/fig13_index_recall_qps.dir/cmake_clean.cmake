file(REMOVE_RECURSE
  "CMakeFiles/fig13_index_recall_qps.dir/fig13_index_recall_qps.cc.o"
  "CMakeFiles/fig13_index_recall_qps.dir/fig13_index_recall_qps.cc.o.d"
  "fig13_index_recall_qps"
  "fig13_index_recall_qps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_index_recall_qps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
