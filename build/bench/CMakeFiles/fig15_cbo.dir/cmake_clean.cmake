file(REMOVE_RECURSE
  "CMakeFiles/fig15_cbo.dir/fig15_cbo.cc.o"
  "CMakeFiles/fig15_cbo.dir/fig15_cbo.cc.o.d"
  "fig15_cbo"
  "fig15_cbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_cbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
