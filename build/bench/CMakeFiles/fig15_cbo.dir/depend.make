# Empty dependencies file for fig15_cbo.
# This may be replaced when dependencies are built.
