# Empty compiler generated dependencies file for table04_load_time.
# This may be replaced when dependencies are built.
