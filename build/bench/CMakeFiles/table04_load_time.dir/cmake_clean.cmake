file(REMOVE_RECURSE
  "CMakeFiles/table04_load_time.dir/table04_load_time.cc.o"
  "CMakeFiles/table04_load_time.dir/table04_load_time.cc.o.d"
  "table04_load_time"
  "table04_load_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_load_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
