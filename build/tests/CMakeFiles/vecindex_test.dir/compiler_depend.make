# Empty compiler generated dependencies file for vecindex_test.
# This may be replaced when dependencies are built.
