file(REMOVE_RECURSE
  "CMakeFiles/vecindex_test.dir/vecindex_test.cc.o"
  "CMakeFiles/vecindex_test.dir/vecindex_test.cc.o.d"
  "vecindex_test"
  "vecindex_test.pdb"
  "vecindex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecindex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
