// Micro-benchmarks (google-benchmark) for the hot kernels under everything:
// distance functions (per dispatch tier), batched one-vs-many scans, PQ ADC
// lookups, SQ8 asymmetric distance, bitmap tests, consistent-hash placement,
// and histogram selectivity estimation.
//
// The *Scalar variants pin the scalar table so the SIMD speedup is visible
// in one run; the unsuffixed variants use whatever tier dispatch selected
// (printed at startup).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "cluster/consistent_hash.h"
#include "common/bitset.h"
#include "common/rng.h"
#include "tests/test_util.h"
#include "vecindex/distance.h"
#include "vecindex/kernels/kernels.h"
#include "vecindex/pq.h"
#include "vecindex/quantizer.h"

namespace blendhouse {
namespace {

namespace kernels = vecindex::kernels;

void BM_L2Sqr(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(2, dim, 1, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        vecindex::L2Sqr(data.data(), data.data() + dim, dim));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2Sqr)->Arg(64)->Arg(96)->Arg(256)->Arg(768);

void BM_L2SqrScalar(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(2, dim, 1, 1);
  const kernels::KernelTable* scalar =
      kernels::GetTable(kernels::SimdTier::kScalar);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        scalar->l2sqr(data.data(), data.data() + dim, dim));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2SqrScalar)->Arg(96)->Arg(768);

void BM_InnerProduct(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(2, dim, 1, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        vecindex::InnerProduct(data.data(), data.data() + dim, dim));
}
BENCHMARK(BM_InnerProduct)->Arg(96)->Arg(768);

void BM_InnerProductScalar(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(2, dim, 1, 1);
  const kernels::KernelTable* scalar =
      kernels::GetTable(kernels::SimdTier::kScalar);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        scalar->inner_product(data.data(), data.data() + dim, dim));
}
BENCHMARK(BM_InnerProductScalar)->Arg(96)->Arg(768);

constexpr size_t kBatchRows = 256;

void BM_BatchL2Sqr(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(kBatchRows + 1, dim, 4, 2);
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    kernels::Get().batch_l2sqr(data.data(), data.data() + dim, kBatchRows,
                               dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows);
}
BENCHMARK(BM_BatchL2Sqr)->Arg(96)->Arg(768);

void BM_BatchInnerProduct(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(kBatchRows + 1, dim, 4, 2);
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    kernels::Get().batch_inner_product(data.data(), data.data() + dim,
                                       kBatchRows, dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows);
}
BENCHMARK(BM_BatchInnerProduct)->Arg(96)->Arg(768);

void BM_BatchCosineWithNorms(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(kBatchRows + 1, dim, 4, 2);
  const float* base = data.data() + dim;
  std::vector<float> norms(kBatchRows);
  for (size_t i = 0; i < kBatchRows; ++i)
    norms[i] = std::sqrt(vecindex::SquaredNorm(base + i * dim, dim));
  float qnorm = std::sqrt(vecindex::SquaredNorm(data.data(), dim));
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    vecindex::BatchCosineWithNorms(data.data(), base, norms.data(), qnorm,
                                   kBatchRows, dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows);
}
BENCHMARK(BM_BatchCosineWithNorms)->Arg(96)->Arg(768);

void BM_SqAsymmetricDistance(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(256, dim, 4, 2);
  vecindex::ScalarQuantizer sq;
  (void)sq.Train(data.data(), 256, dim);
  std::vector<uint8_t> code(dim);
  sq.Encode(data.data() + dim, code.data());
  for (auto _ : state)
    benchmark::DoNotOptimize(sq.L2SqrToCode(data.data(), code.data()));
}
BENCHMARK(BM_SqAsymmetricDistance)->Arg(96)->Arg(768);

void BM_PqAdcDistance(benchmark::State& state) {
  size_t dim = 96, m = 12;
  auto data = test::MakeClusteredVectors(2000, dim, 8, 3);
  vecindex::ProductQuantizer pq;
  (void)pq.Train(data.data(), 2000, dim, m, 8);
  std::vector<uint8_t> code(pq.code_size());
  pq.Encode(data.data() + dim, code.data());
  std::vector<float> table(pq.m() * pq.ks());
  pq.BuildAdcTable(data.data(), table.data());
  for (auto _ : state)
    benchmark::DoNotOptimize(pq.AdcDistance(table.data(), code.data()));
}
BENCHMARK(BM_PqAdcDistance);

void BM_PqAdcDistanceBatch(benchmark::State& state) {
  size_t dim = 96, m = 12;
  auto data = test::MakeClusteredVectors(2000, dim, 8, 3);
  vecindex::ProductQuantizer pq;
  (void)pq.Train(data.data(), 2000, dim, m, 8);
  std::vector<uint8_t> codes(kBatchRows * pq.code_size());
  for (size_t i = 0; i < kBatchRows; ++i)
    pq.Encode(data.data() + (i + 1) * dim, codes.data() + i * pq.code_size());
  std::vector<float> table(pq.m() * pq.ks());
  pq.BuildAdcTable(data.data(), table.data());
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    pq.AdcDistanceBatch(table.data(), codes.data(), kBatchRows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows);
}
BENCHMARK(BM_PqAdcDistanceBatch);

void BM_PqBuildAdcTable(benchmark::State& state) {
  size_t dim = 96, m = 12;
  auto data = test::MakeClusteredVectors(2000, dim, 8, 3);
  vecindex::ProductQuantizer pq;
  (void)pq.Train(data.data(), 2000, dim, m, 8);
  std::vector<float> table(pq.m() * pq.ks());
  for (auto _ : state) {
    pq.BuildAdcTable(data.data(), table.data());
    benchmark::DoNotOptimize(table.data());
  }
}
BENCHMARK(BM_PqBuildAdcTable);

void BM_BitsetTest(benchmark::State& state) {
  common::Bitset bits(100000);
  for (size_t i = 0; i < 100000; i += 3) bits.Set(i);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bits.Test(i));
    i = (i + 7919) % 100000;
  }
}
BENCHMARK(BM_BitsetTest);

void BM_ConsistentHashPlacement(benchmark::State& state) {
  cluster::ConsistentHashRing ring(static_cast<size_t>(state.range(0)));
  for (int n = 0; n < 16; ++n) ring.AddNode("worker_" + std::to_string(n));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.GetNode("segment_" + std::to_string(i++)));
  }
}
BENCHMARK(BM_ConsistentHashPlacement)->Arg(1)->Arg(21);

}  // namespace
}  // namespace blendhouse

int main(int argc, char** argv) {
  std::printf(
      "simd dispatch: active tier = %s\n",
      blendhouse::vecindex::kernels::SimdTierName(
          blendhouse::vecindex::kernels::ActiveTier())
          .c_str());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
