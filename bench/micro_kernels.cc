// Micro-benchmarks (google-benchmark) for the hot kernels under everything:
// distance functions (per dispatch tier), batched one-vs-many scans, PQ ADC
// lookups, SQ8 asymmetric distance, bitmap tests, consistent-hash placement,
// and histogram selectivity estimation.
//
// The *Scalar variants pin the scalar table so the SIMD speedup is visible
// in one run; the unsuffixed variants use whatever tier dispatch selected
// (printed at startup).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"

#include "cluster/consistent_hash.h"
#include "common/bitset.h"
#include "common/rng.h"
#include "sql/expression.h"
#include "storage/segment.h"
#include "tests/test_util.h"
#include "vecindex/distance.h"
#include "vecindex/flat_index.h"
#include "vecindex/hnsw_index.h"
#include "vecindex/ivf_index.h"
#include "vecindex/kernels/kernels.h"
#include "vecindex/pq.h"
#include "vecindex/quantizer.h"

namespace blendhouse {
namespace {

namespace kernels = vecindex::kernels;

void BM_L2Sqr(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(2, dim, 1, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        vecindex::L2Sqr(data.data(), data.data() + dim, dim));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2Sqr)->Arg(64)->Arg(96)->Arg(256)->Arg(768);

void BM_L2SqrScalar(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(2, dim, 1, 1);
  const kernels::KernelTable* scalar =
      kernels::GetTable(kernels::SimdTier::kScalar);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        scalar->l2sqr(data.data(), data.data() + dim, dim));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2SqrScalar)->Arg(96)->Arg(768);

void BM_InnerProduct(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(2, dim, 1, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        vecindex::InnerProduct(data.data(), data.data() + dim, dim));
}
BENCHMARK(BM_InnerProduct)->Arg(96)->Arg(768);

void BM_InnerProductScalar(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(2, dim, 1, 1);
  const kernels::KernelTable* scalar =
      kernels::GetTable(kernels::SimdTier::kScalar);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        scalar->inner_product(data.data(), data.data() + dim, dim));
}
BENCHMARK(BM_InnerProductScalar)->Arg(96)->Arg(768);

constexpr size_t kBatchRows = 256;

void BM_BatchL2Sqr(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(kBatchRows + 1, dim, 4, 2);
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    kernels::Get().batch_l2sqr(data.data(), data.data() + dim, kBatchRows,
                               dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows);
}
BENCHMARK(BM_BatchL2Sqr)->Arg(96)->Arg(768);

void BM_BatchInnerProduct(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(kBatchRows + 1, dim, 4, 2);
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    kernels::Get().batch_inner_product(data.data(), data.data() + dim,
                                       kBatchRows, dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows);
}
BENCHMARK(BM_BatchInnerProduct)->Arg(96)->Arg(768);

void BM_BatchCosineWithNorms(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(kBatchRows + 1, dim, 4, 2);
  const float* base = data.data() + dim;
  std::vector<float> norms(kBatchRows);
  for (size_t i = 0; i < kBatchRows; ++i)
    norms[i] = std::sqrt(vecindex::SquaredNorm(base + i * dim, dim));
  float qnorm = std::sqrt(vecindex::SquaredNorm(data.data(), dim));
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    vecindex::BatchCosineWithNorms(data.data(), base, norms.data(), qnorm,
                                   kBatchRows, dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows);
}
BENCHMARK(BM_BatchCosineWithNorms)->Arg(96)->Arg(768);

// One first-pass scan chunk through the reduced-precision store (the per-
// chunk work FLAT/IVF scans issue at fp16/bf16/int8; DESIGN.md §13).
void BM_StoreBatchDistance(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto precision = static_cast<vecindex::Precision>(state.range(1));
  auto data = test::MakeClusteredVectors(kBatchRows + 1, dim, 4, 2);
  vecindex::PrecisionStore store;
  store.Configure(precision, dim, vecindex::Metric::kL2);
  store.Train(data.data() + dim, kBatchRows);
  store.Append(data.data() + dim, kBatchRows);
  vecindex::PrecisionStore::QueryCtx ctx;
  store.PrepareQuery(data.data(), &ctx);
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    store.BatchDistance(ctx, 0, kBatchRows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows);
  state.SetLabel(vecindex::PrecisionName(precision));
}
BENCHMARK(BM_StoreBatchDistance)
    ->ArgsProduct({{96, 768}, {1, 2, 3}})  // precision: fp16, bf16, int8
    ->ArgNames({"dim", "precision"});

void BM_SqAsymmetricDistance(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(256, dim, 4, 2);
  vecindex::ScalarQuantizer sq;
  (void)sq.Train(data.data(), 256, dim);
  std::vector<uint8_t> code(dim);
  sq.Encode(data.data() + dim, code.data());
  for (auto _ : state)
    benchmark::DoNotOptimize(sq.L2SqrToCode(data.data(), code.data()));
}
BENCHMARK(BM_SqAsymmetricDistance)->Arg(96)->Arg(768);

void BM_PqAdcDistance(benchmark::State& state) {
  size_t dim = 96, m = 12;
  auto data = test::MakeClusteredVectors(2000, dim, 8, 3);
  vecindex::ProductQuantizer pq;
  (void)pq.Train(data.data(), 2000, dim, m, 8);
  std::vector<uint8_t> code(pq.code_size());
  pq.Encode(data.data() + dim, code.data());
  std::vector<float> table(pq.m() * pq.ks());
  pq.BuildAdcTable(data.data(), table.data());
  for (auto _ : state)
    benchmark::DoNotOptimize(pq.AdcDistance(table.data(), code.data()));
}
BENCHMARK(BM_PqAdcDistance);

void BM_PqAdcDistanceBatch(benchmark::State& state) {
  size_t dim = 96, m = 12;
  auto data = test::MakeClusteredVectors(2000, dim, 8, 3);
  vecindex::ProductQuantizer pq;
  (void)pq.Train(data.data(), 2000, dim, m, 8);
  std::vector<uint8_t> codes(kBatchRows * pq.code_size());
  for (size_t i = 0; i < kBatchRows; ++i)
    pq.Encode(data.data() + (i + 1) * dim, codes.data() + i * pq.code_size());
  std::vector<float> table(pq.m() * pq.ks());
  pq.BuildAdcTable(data.data(), table.data());
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    pq.AdcDistanceBatch(table.data(), codes.data(), kBatchRows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows);
}
BENCHMARK(BM_PqAdcDistanceBatch);

void BM_PqBuildAdcTable(benchmark::State& state) {
  size_t dim = 96, m = 12;
  auto data = test::MakeClusteredVectors(2000, dim, 8, 3);
  vecindex::ProductQuantizer pq;
  (void)pq.Train(data.data(), 2000, dim, m, 8);
  std::vector<float> table(pq.m() * pq.ks());
  for (auto _ : state) {
    pq.BuildAdcTable(data.data(), table.data());
    benchmark::DoNotOptimize(table.data());
  }
}
BENCHMARK(BM_PqBuildAdcTable);

void BM_BitsetTest(benchmark::State& state) {
  common::Bitset bits(100000);
  for (size_t i = 0; i < 100000; i += 3) bits.Set(i);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bits.Test(i));
    i = (i + 7919) % 100000;
  }
}
BENCHMARK(BM_BitsetTest);

// ---------------------------------------------------------------------------
// Filter-bitmap construction: row-wise reference vs vectorized evaluator
// ---------------------------------------------------------------------------

constexpr size_t kFilterRows = 100000;

const storage::SegmentPtr& FilterBenchSegment() {
  static storage::SegmentPtr segment = [] {
    storage::TableSchema schema;
    schema.table_name = "bench";
    schema.columns = {{"id", storage::ColumnType::kInt64},
                      {"score", storage::ColumnType::kFloat64},
                      {"name", storage::ColumnType::kString}};
    storage::SegmentBuilder builder(schema, "bench_seg");
    common::Rng rng(11);
    static const char* kNames[] = {"cat", "dog", "catalog", "hot dog", "x"};
    for (size_t i = 0; i < kFilterRows; ++i) {
      storage::Row row;
      row.values = {static_cast<int64_t>(i), rng.Uniform(0.0, 1.0),
                    std::string(kNames[rng.UniformInt(0, 4)])};
      (void)builder.AppendRow(row);
    }
    return *builder.Finish();
  }();
  return segment;
}

sql::ExprPtr NumericConjunct() {
  // id >= 25000 AND id < 75000 AND score < 0.5  (~25% selectivity)
  using sql::Expr;
  auto ge = Expr::Compare(Expr::CmpOp::kGe, Expr::Column("id"),
                          Expr::Literal(int64_t{25000}));
  auto lt = Expr::Compare(Expr::CmpOp::kLt, Expr::Column("id"),
                          Expr::Literal(int64_t{75000}));
  auto sc = Expr::Compare(Expr::CmpOp::kLt, Expr::Column("score"),
                          Expr::Literal(0.5));
  return Expr::And(Expr::And(std::move(ge), std::move(lt)), std::move(sc));
}

void BM_BuildBitmapRowWise(benchmark::State& state) {
  const storage::SegmentPtr& segment = FilterBenchSegment();
  sql::ExprPtr expr = NumericConjunct();
  auto eval = sql::PredicateEvaluator::Bind(*expr, *segment);
  for (auto _ : state) {
    common::Bitset bitmap(segment->num_rows());
    for (size_t i = 0; i < segment->num_rows(); ++i)
      if (eval->EvalRow(i)) bitmap.Set(i);
    benchmark::DoNotOptimize(bitmap.words().data());
  }
  state.SetItemsProcessed(state.iterations() * kFilterRows);
}
BENCHMARK(BM_BuildBitmapRowWise);

void BM_BuildBitmapVectorized(benchmark::State& state) {
  const bool pruning = state.range(0) != 0;
  const storage::SegmentPtr& segment = FilterBenchSegment();
  sql::ExprPtr expr = NumericConjunct();
  auto eval = sql::PredicateEvaluator::Bind(*expr, *segment);
  for (auto _ : state) {
    common::Bitset bitmap = eval->BuildBitmap(nullptr, pruning);
    benchmark::DoNotOptimize(bitmap.words().data());
  }
  state.SetItemsProcessed(state.iterations() * kFilterRows);
}
BENCHMARK(BM_BuildBitmapVectorized)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("granule_pruning");

void BM_BuildBitmapStringPredicate(benchmark::State& state) {
  // Cheap numeric conjunct gates an expensive LIKE: the lazy path should
  // only pay the string match on rows surviving the word-level AND.
  using sql::Expr;
  const storage::SegmentPtr& segment = FilterBenchSegment();
  auto expr = Expr::And(
      Expr::Compare(Expr::CmpOp::kLt, Expr::Column("id"),
                    Expr::Literal(int64_t{10000})),
      Expr::Like(Expr::Column("name"), "%cat%"));
  auto eval = sql::PredicateEvaluator::Bind(*expr, *segment);
  for (auto _ : state) {
    common::Bitset bitmap = eval->BuildBitmap(nullptr, true);
    benchmark::DoNotOptimize(bitmap.words().data());
  }
  state.SetItemsProcessed(state.iterations() * kFilterRows);
}
BENCHMARK(BM_BuildBitmapStringPredicate);

// ---------------------------------------------------------------------------
// Filtered ANN search: selectivity sweep over flat / IVF / HNSW
// ---------------------------------------------------------------------------

constexpr size_t kFsN = 20000;
constexpr size_t kFsDim = 64;

const std::vector<float>& FilteredSearchData() {
  static std::vector<float> data =
      test::MakeClusteredVectors(kFsN, kFsDim, 16, 13);
  return data;
}

vecindex::VectorIndex* FilteredSearchIndex(const std::string& type) {
  static std::map<std::string, vecindex::VectorIndexPtr> cache;
  auto it = cache.find(type);
  if (it != cache.end()) return it->second.get();
  const std::vector<float>& data = FilteredSearchData();
  vecindex::VectorIndexPtr index;
  if (type == "FLAT") {
    index = std::make_unique<vecindex::FlatIndex>(kFsDim,
                                                  vecindex::Metric::kL2);
  } else if (type == "IVFFLAT") {
    vecindex::IvfOptions opts;
    opts.nlist = 64;
    index = std::make_unique<vecindex::IvfFlatIndex>(
        kFsDim, vecindex::Metric::kL2, opts);
  } else {
    index = std::make_unique<vecindex::HnswIndex>(kFsDim,
                                                  vecindex::Metric::kL2);
  }
  if (index->NeedsTraining()) (void)index->Train(data.data(), kFsN);
  auto ids = test::SequentialIds(kFsN);
  (void)index->AddWithIds(data.data(), ids.data(), kFsN);
  return cache.emplace(type, std::move(index)).first->second.get();
}

common::Bitset SelectivityFilter(size_t n, int permille) {
  common::Bitset filter(n);
  common::Rng rng(17);
  for (size_t i = 0; i < n; ++i)
    if (rng.UniformInt(0, 999) < permille) filter.Set(i);
  return filter;
}

void RunFilteredSearch(benchmark::State& state, const std::string& type) {
  vecindex::VectorIndex* index = FilteredSearchIndex(type);
  common::Bitset filter =
      SelectivityFilter(kFsN, static_cast<int>(state.range(0)));
  const std::vector<float>& data = FilteredSearchData();
  vecindex::SearchParams p;
  p.k = 10;
  p.ef_search = 128;
  p.nprobe = 8;
  p.filter = &filter;
  size_t q = 0;
  for (auto _ : state) {
    const float* query = data.data() + (q * 127 % kFsN) * kFsDim;
    ++q;
    auto found = index->SearchWithFilter(query, p);
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FilteredSearchFlat(benchmark::State& state) {
  RunFilteredSearch(state, "FLAT");
}
void BM_FilteredSearchIvfFlat(benchmark::State& state) {
  RunFilteredSearch(state, "IVFFLAT");
}
void BM_FilteredSearchHnsw(benchmark::State& state) {
  RunFilteredSearch(state, "HNSW");
}
// Arg = selectivity in permille: 0.1%, 1%, 10%, 50%, 90%.
BENCHMARK(BM_FilteredSearchFlat)
    ->Arg(1)->Arg(10)->Arg(100)->Arg(500)->Arg(900)
    ->ArgName("sel_permille");
BENCHMARK(BM_FilteredSearchIvfFlat)
    ->Arg(1)->Arg(10)->Arg(100)->Arg(500)->Arg(900)
    ->ArgName("sel_permille");
BENCHMARK(BM_FilteredSearchHnsw)
    ->Arg(1)->Arg(10)->Arg(100)->Arg(500)->Arg(900)
    ->ArgName("sel_permille");

// ---------------------------------------------------------------------------
// Reduced-precision scan sweep -> BENCH_micro_kernels.json (DESIGN.md §13)
// ---------------------------------------------------------------------------

struct SweepEntry {
  vecindex::Precision precision;
  const char* metric;
  size_t dim;
  double rows_per_sec;
};

/// Rows/s of one 256-row scan chunk at the given precision and metric: the
/// fp32 path uses the dispatched batch kernels directly, the reduced
/// precisions go through PrecisionStore::BatchDistance — exactly what the
/// index scans issue per chunk.
double MeasureScanRowsPerSec(vecindex::Precision p, vecindex::Metric m,
                             size_t dim) {
  auto data = test::MakeClusteredVectors(kBatchRows + 1, dim, 4, 5);
  const float* query = data.data();
  const float* base = data.data() + dim;
  std::vector<float> out(kBatchRows);
  std::vector<float> norms;
  float qnorm = std::sqrt(vecindex::SquaredNorm(query, dim));
  vecindex::PrecisionStore store;
  vecindex::PrecisionStore::QueryCtx ctx;
  std::function<void()> run;
  if (p == vecindex::Precision::kFp32) {
    const kernels::KernelTable& kt = kernels::Get();
    switch (m) {
      case vecindex::Metric::kL2:
        run = [&, l2 = kt.batch_l2sqr] {
          l2(query, base, kBatchRows, dim, out.data());
        };
        break;
      case vecindex::Metric::kInnerProduct:
        run = [&, ip = kt.batch_inner_product] {
          ip(query, base, kBatchRows, dim, out.data());
        };
        break;
      case vecindex::Metric::kCosine:
        norms.resize(kBatchRows);
        for (size_t i = 0; i < kBatchRows; ++i)
          norms[i] = std::sqrt(vecindex::SquaredNorm(base + i * dim, dim));
        run = [&] {
          vecindex::BatchCosineWithNorms(query, base, norms.data(), qnorm,
                                         kBatchRows, dim, out.data());
        };
        break;
    }
  } else {
    store.Configure(p, dim, m);
    store.Train(base, kBatchRows);
    store.Append(base, kBatchRows);
    store.PrepareQuery(query, &ctx);
    run = [&] { store.BatchDistance(ctx, 0, kBatchRows, out.data()); };
  }
  for (int i = 0; i < 16; ++i) run();  // warm caches and the dispatch table
  common::Timer timer;
  size_t iters = 0;
  do {
    for (int i = 0; i < 8; ++i) run();
    iters += 8;
    benchmark::DoNotOptimize(out.data());
  } while (timer.ElapsedSeconds() < 0.05);
  return static_cast<double>(iters * kBatchRows) / timer.ElapsedSeconds();
}

/// Sweeps all four precisions x metrics x dims, prints the table, writes
/// BENCH_micro_kernels.json, and (under BH_BENCH_ASSERT=1) gates on the
/// two-tier pipeline's premise: at least one of int8/fp16 must scan >= 1.5x
/// faster than fp32 at dim 768.
bool RunReducedPrecisionSweep() {
  const size_t kSweepDims[] = {96, 768};
  const struct {
    vecindex::Metric m;
    const char* name;
  } kMetrics[] = {{vecindex::Metric::kL2, "l2"},
                  {vecindex::Metric::kInnerProduct, "ip"},
                  {vecindex::Metric::kCosine, "cosine"}};
  const vecindex::Precision kPrecisions[] = {
      vecindex::Precision::kFp32, vecindex::Precision::kFp16,
      vecindex::Precision::kBf16, vecindex::Precision::kInt8};

  std::vector<SweepEntry> entries;
  std::printf("\nReduced-precision scan sweep (rows/s, batch=%zu):\n",
              kBatchRows);
  std::printf("%-10s %-8s %6s %14s %10s\n", "precision", "metric", "dim",
              "rows/s", "vs fp32");
  std::map<std::string, double> fp32_baseline;
  for (size_t dim : kSweepDims) {
    for (const auto& metric : kMetrics) {
      for (vecindex::Precision p : kPrecisions) {
        SweepEntry e{p, metric.name, dim,
                     MeasureScanRowsPerSec(p, metric.m, dim)};
        std::string key = std::string(metric.name) + "/" +
                          std::to_string(dim);
        if (p == vecindex::Precision::kFp32) fp32_baseline[key] = e.rows_per_sec;
        entries.push_back(e);
        std::printf("%-10s %-8s %6zu %14.0f %9.2fx\n",
                    vecindex::PrecisionName(p).c_str(), metric.name, dim,
                    e.rows_per_sec, e.rows_per_sec / fp32_baseline[key]);
      }
    }
  }

  auto speedup = [&](vecindex::Precision p, const char* metric, size_t dim) {
    for (const SweepEntry& e : entries)
      if (e.precision == p && e.dim == dim &&
          std::string(e.metric) == metric)
        return e.rows_per_sec /
               fp32_baseline[std::string(metric) + "/" + std::to_string(dim)];
    return 0.0;
  };

  std::FILE* f = std::fopen("BENCH_micro_kernels.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"micro_kernels\",\n");
    std::fprintf(f, "  \"tier\": \"%s\",\n",
                 kernels::SimdTierName(kernels::ActiveTier()).c_str());
    std::fprintf(f, "  \"batch_rows\": %zu,\n", kBatchRows);
    std::fprintf(f, "  \"scan\": [\n");
    for (size_t i = 0; i < entries.size(); ++i) {
      const SweepEntry& e = entries[i];
      std::fprintf(f,
                   "    {\"precision\": \"%s\", \"metric\": \"%s\", "
                   "\"dim\": %zu, \"rows_per_sec\": %.0f}%s\n",
                   vecindex::PrecisionName(e.precision).c_str(), e.metric,
                   e.dim, e.rows_per_sec,
                   i + 1 < entries.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"speedup_vs_fp32_l2_768\": {\"fp16\": %.3f, "
                 "\"bf16\": %.3f, \"int8\": %.3f}\n",
                 speedup(vecindex::Precision::kFp16, "l2", 768),
                 speedup(vecindex::Precision::kBf16, "l2", 768),
                 speedup(vecindex::Precision::kInt8, "l2", 768));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\n(sweep written to BENCH_micro_kernels.json)\n");
  }

  if (const char* gate = std::getenv("BH_BENCH_ASSERT");
      gate != nullptr && gate[0] == '1') {
    double best = std::max(speedup(vecindex::Precision::kFp16, "l2", 768),
                           speedup(vecindex::Precision::kInt8, "l2", 768));
    if (best < 1.5) {
      std::fprintf(stderr,
                   "BENCH ASSERT FAILED: best reduced-precision scan speedup "
                   "%.2fx < 1.5x (fp16/int8 vs fp32, l2, dim 768)\n",
                   best);
      return false;
    }
    std::printf("bench assert: reduced-precision scan speedup %.2fx >= 1.5x\n",
                best);
  }
  return true;
}

void BM_ConsistentHashPlacement(benchmark::State& state) {
  cluster::ConsistentHashRing ring(static_cast<size_t>(state.range(0)));
  for (int n = 0; n < 16; ++n) ring.AddNode("worker_" + std::to_string(n));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.GetNode("segment_" + std::to_string(i++)));
  }
}
BENCHMARK(BM_ConsistentHashPlacement)->Arg(1)->Arg(21);

}  // namespace
}  // namespace blendhouse

int main(int argc, char** argv) {
  std::printf(
      "simd dispatch: active tier = %s\n",
      blendhouse::vecindex::kernels::SimdTierName(
          blendhouse::vecindex::kernels::ActiveTier())
          .c_str());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return blendhouse::RunReducedPrecisionSweep() ? 0 : 1;
}
