// Micro-benchmarks (google-benchmark) for the hot kernels under everything:
// distance functions, PQ ADC lookups, SQ8 asymmetric distance, bitmap tests,
// consistent-hash placement, and histogram selectivity estimation.

#include <benchmark/benchmark.h>

#include "cluster/consistent_hash.h"
#include "common/bitset.h"
#include "common/rng.h"
#include "tests/test_util.h"
#include "vecindex/distance.h"
#include "vecindex/pq.h"
#include "vecindex/quantizer.h"

namespace blendhouse {
namespace {

void BM_L2Sqr(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(2, dim, 1, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        vecindex::L2Sqr(data.data(), data.data() + dim, dim));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2Sqr)->Arg(64)->Arg(96)->Arg(256)->Arg(768);

void BM_InnerProduct(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(2, dim, 1, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        vecindex::InnerProduct(data.data(), data.data() + dim, dim));
}
BENCHMARK(BM_InnerProduct)->Arg(96)->Arg(768);

void BM_SqAsymmetricDistance(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto data = test::MakeClusteredVectors(256, dim, 4, 2);
  vecindex::ScalarQuantizer sq;
  (void)sq.Train(data.data(), 256, dim);
  std::vector<uint8_t> code(dim);
  sq.Encode(data.data() + dim, code.data());
  for (auto _ : state)
    benchmark::DoNotOptimize(sq.L2SqrToCode(data.data(), code.data()));
}
BENCHMARK(BM_SqAsymmetricDistance)->Arg(96)->Arg(768);

void BM_PqAdcDistance(benchmark::State& state) {
  size_t dim = 96, m = 12;
  auto data = test::MakeClusteredVectors(2000, dim, 8, 3);
  vecindex::ProductQuantizer pq;
  (void)pq.Train(data.data(), 2000, dim, m, 8);
  std::vector<uint8_t> code(pq.code_size());
  pq.Encode(data.data() + dim, code.data());
  std::vector<float> table(pq.m() * pq.ks());
  pq.BuildAdcTable(data.data(), table.data());
  for (auto _ : state)
    benchmark::DoNotOptimize(pq.AdcDistance(table.data(), code.data()));
}
BENCHMARK(BM_PqAdcDistance);

void BM_PqBuildAdcTable(benchmark::State& state) {
  size_t dim = 96, m = 12;
  auto data = test::MakeClusteredVectors(2000, dim, 8, 3);
  vecindex::ProductQuantizer pq;
  (void)pq.Train(data.data(), 2000, dim, m, 8);
  std::vector<float> table(pq.m() * pq.ks());
  for (auto _ : state) {
    pq.BuildAdcTable(data.data(), table.data());
    benchmark::DoNotOptimize(table.data());
  }
}
BENCHMARK(BM_PqBuildAdcTable);

void BM_BitsetTest(benchmark::State& state) {
  common::Bitset bits(100000);
  for (size_t i = 0; i < 100000; i += 3) bits.Set(i);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bits.Test(i));
    i = (i + 7919) % 100000;
  }
}
BENCHMARK(BM_BitsetTest);

void BM_ConsistentHashPlacement(benchmark::State& state) {
  cluster::ConsistentHashRing ring(static_cast<size_t>(state.range(0)));
  for (int n = 0; n < 16; ++n) ring.AddNode("worker_" + std::to_string(n));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.GetNode("segment_" + std::to_string(i++)));
  }
}
BENCHMARK(BM_ConsistentHashPlacement)->Arg(1)->Arg(21);

}  // namespace
}  // namespace blendhouse

BENCHMARK_MAIN();
