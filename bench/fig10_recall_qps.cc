// Fig. 10: recall-vs-QPS trade-off curves of the three systems on the
// Cohere-like dataset (HNSW, ef_search sweep, pure vector search).
//
// Expected shape (paper): BlendHouse's curve dominates (higher QPS at equal
// recall); Milvus sits below due to the per-query proxy hop; all curves bend
// down as ef grows.

#include <cstdio>

#include "baselines/blendhouse_system.h"
#include "baselines/milvus_sim.h"
#include "baselines/pgvector_sim.h"
#include "bench/bench_util.h"

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Fig. 10: recall vs QPS (HNSW, vector search)");

  baselines::DatasetSpec spec = bench::Scaled(baselines::CohereSmall());
  baselines::BenchDataset data = baselines::MakeDataset(spec);
  const size_t k = 10;
  const size_t kMeasureQueries = 200;

  baselines::BlendHouseSystem blendhouse(bench::DefaultBhOptions());
  baselines::MilvusSim milvus(bench::DefaultMilvusOptions());
  baselines::PgvectorSim pgvector(bench::DefaultPgOptions());
  if (!blendhouse.Load(data).ok() || !milvus.Load(data).ok() ||
      !pgvector.Load(data).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  std::vector<std::pair<const char*, baselines::VectorSystem*>> systems = {
      {"BlendHouse", &blendhouse},
      {"Milvus", &milvus},
      {"pgvector", &pgvector}};

  // Cache ground truth once.
  size_t queries = std::min<size_t>(data.num_queries, 24);
  std::vector<std::vector<vecindex::IdType>> truth(queries);
  for (size_t q = 0; q < queries; ++q)
    truth[q] = baselines::GroundTruth(data, data.query(q), k);

  std::printf("%-12s %8s %10s %10s\n", "system", "ef", "recall", "QPS");
  for (auto& [name, system] : systems) {
    for (int ef : {10, 20, 40, 80, 160, 320}) {
      double total = 0;
      for (size_t q = 0; q < queries; ++q) {
        baselines::SearchRequest req;
        req.query = data.query(q);
        req.k = k;
        req.ef_search = ef;
        auto hits = system->Search(req);
        if (hits.ok()) total += baselines::RecallOf(*hits, truth[q]);
      }
      double recall = total / static_cast<double>(queries);
      bench::QpsResult qps =
          bench::SystemQps(*system, data, k, ef, kMeasureQueries);
      std::printf("%-12s %8d %9.2f%% %10.0f\n", name, ef, recall * 100,
                  qps.qps);
    }
  }
  return 0;
}
