// Fig. 10: recall-vs-QPS trade-off curves of the three systems on the
// Cohere-like dataset (HNSW, ef_search sweep, pure vector search).
//
// Expected shape (paper): BlendHouse's curve dominates (higher QPS at equal
// recall); Milvus sits below due to the per-query proxy hop; all curves bend
// down as ef grows.
//
// The tail section runs BlendHouse again with an int8 first-pass index and
// the executor's fp32 rerank (DESIGN.md §13); with BH_BENCH_ASSERT=1 its
// recall@10 must stay within 1% of the pure-fp32 run.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "baselines/blendhouse_system.h"
#include "baselines/milvus_sim.h"
#include "baselines/pgvector_sim.h"
#include "bench/bench_util.h"

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Fig. 10: recall vs QPS (HNSW, vector search)");

  baselines::DatasetSpec spec = bench::Scaled(baselines::CohereSmall());
  baselines::BenchDataset data = baselines::MakeDataset(spec);
  const size_t k = 10;
  const size_t kMeasureQueries = 200;

  baselines::BlendHouseSystem blendhouse(bench::DefaultBhOptions());
  baselines::MilvusSim milvus(bench::DefaultMilvusOptions());
  baselines::PgvectorSim pgvector(bench::DefaultPgOptions());
  if (!blendhouse.Load(data).ok() || !milvus.Load(data).ok() ||
      !pgvector.Load(data).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  std::vector<std::pair<const char*, baselines::VectorSystem*>> systems = {
      {"BlendHouse", &blendhouse},
      {"Milvus", &milvus},
      {"pgvector", &pgvector}};

  // Cache ground truth once.
  size_t queries = std::min<size_t>(data.num_queries, 24);
  std::vector<std::vector<vecindex::IdType>> truth(queries);
  for (size_t q = 0; q < queries; ++q)
    truth[q] = baselines::GroundTruth(data, data.query(q), k);

  std::printf("%-12s %8s %10s %10s\n", "system", "ef", "recall", "QPS");
  for (auto& [name, system] : systems) {
    for (int ef : {10, 20, 40, 80, 160, 320}) {
      double total = 0;
      for (size_t q = 0; q < queries; ++q) {
        baselines::SearchRequest req;
        req.query = data.query(q);
        req.k = k;
        req.ef_search = ef;
        auto hits = system->Search(req);
        if (hits.ok()) total += baselines::RecallOf(*hits, truth[q]);
      }
      double recall = total / static_cast<double>(queries);
      bench::QpsResult qps =
          bench::SystemQps(*system, data, k, ef, kMeasureQueries);
      std::printf("%-12s %8d %9.2f%% %10.0f\n", name, ef, recall * 100,
                  qps.qps);
    }
  }

  // ---- Reduced-precision parity: int8 first pass + fp32 rerank ----
  auto int8_opts = bench::DefaultBhOptions();
  int8_opts.index_params["PRECISION"] = "INT8";
  baselines::BlendHouseSystem bh_int8(int8_opts);
  if (!bh_int8.Load(data).ok()) {
    std::fprintf(stderr, "int8 load failed\n");
    return 1;
  }
  auto recall_at = [&](baselines::VectorSystem& system, int ef) {
    double total = 0;
    for (size_t q = 0; q < queries; ++q) {
      baselines::SearchRequest req;
      req.query = data.query(q);
      req.k = k;
      req.ef_search = ef;
      auto hits = system.Search(req);
      if (hits.ok()) total += baselines::RecallOf(*hits, truth[q]);
    }
    return total / static_cast<double>(queries);
  };
  const int kParityEf = 160;
  double recall_fp32 = recall_at(blendhouse, kParityEf);
  double recall_int8 = recall_at(bh_int8, kParityEf);
  bench::QpsResult qps_int8 =
      bench::SystemQps(bh_int8, data, k, kParityEf, kMeasureQueries);
  std::printf(
      "\nint8 first pass + fp32 rerank (ef=%d): recall %.2f%% vs fp32 "
      "%.2f%%, QPS %.0f\n",
      kParityEf, recall_int8 * 100, recall_fp32 * 100, qps_int8.qps);
  bench::PrintRegistrySnapshot({"bh_exec_fp32_rerank"});

  if (const char* gate = std::getenv("BH_BENCH_ASSERT");
      gate != nullptr && gate[0] == '1') {
    if (std::fabs(recall_fp32 - recall_int8) > 0.01) {
      std::fprintf(stderr,
                   "BENCH ASSERT FAILED: int8+rerank recall@10 %.4f deviates "
                   "more than 1%% from fp32 %.4f\n",
                   recall_int8, recall_fp32);
      return 1;
    }
    std::printf("bench assert: int8+rerank recall within 1%% of fp32\n");
  }
  return 0;
}
