// Fig. 14: impact of realtime updates (delete bitmaps + new versions) on
// search QPS, and recovery after compaction removes the tombstoned rows.
//
// Expected shape (paper): QPS degrades as the updated-row fraction grows
// (old versions must be filtered by delete bitmaps and updated rows live in
// extra small segments); after compaction QPS returns to baseline.

#include <cstdio>

#include "baselines/blendhouse_system.h"
#include "bench/bench_util.h"

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Fig. 14: update volume vs QPS, with/without compaction");

  baselines::DatasetSpec spec = bench::Scaled(baselines::CohereSmall());
  spec.n /= 2;
  baselines::BenchDataset data = baselines::MakeDataset(spec);

  baselines::BlendHouseSystemOptions opts = bench::DefaultBhOptions();
  opts.db = core::BlendHouseOptions::Fast();
  opts.db.ingest.max_segment_rows = 2048;
  baselines::BlendHouseSystem system(opts);
  if (!system.Load(data).ok()) return 1;
  core::BlendHouse& db = system.db();

  auto qps = [&]() {
    return bench::SystemQps(system, data, 10, 64, 200).qps;
  };

  std::printf("%-22s %10s %12s %14s\n", "updated rows", "QPS",
              "segments", "deleted rows");
  double updated_so_far = 0;
  for (double target : {0.0, 0.10, 0.20, 0.40}) {
    if (target > 0) {
      // UPDATE moves rows to new versions; id ranges select the fraction.
      int64_t lo = static_cast<int64_t>(updated_so_far * data.n);
      int64_t hi = static_cast<int64_t>(target * data.n) - 1;
      auto upd = db.ExecuteSql(
          "UPDATE bench SET attr = 0 WHERE id BETWEEN " + std::to_string(lo) +
          " AND " + std::to_string(hi) + ";");
      if (!upd.ok()) {
        std::fprintf(stderr, "update failed: %s\n",
                     upd.status().ToString().c_str());
        return 1;
      }
      updated_so_far = target;
    }
    auto snap = db.engine("bench")->Snapshot();
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%%", target * 100);
    std::printf("%-22s %10.0f %12zu %14llu\n", label, qps(),
                snap.segments.size(),
                static_cast<unsigned long long>(snap.TotalDeletedRows()));
  }

  auto compacted = db.ExecuteSql("OPTIMIZE TABLE bench;");
  if (!compacted.ok()) return 1;
  auto snap = db.engine("bench")->Snapshot();
  std::printf("%-22s %10.0f %12zu %14llu\n", "after compaction", qps(),
              snap.segments.size(),
              static_cast<unsigned long long>(snap.TotalDeletedRows()));
  return 0;
}
