// Fig. 16: hybrid-query QPS under the four data-placement strategies on the
// LAION-like workload (range predicate + vector search): random placement,
// scalar partitioning, semantic (CLUSTER BY) partitioning, and both.
//
// Expected shape (paper): scalar and semantic partitioning each beat random;
// their combination is best — each prunes a different dimension of the
// segment set.

#include <cstdio>

#include "baselines/blendhouse_system.h"
#include "bench/bench_util.h"

namespace blendhouse {
namespace {

struct Config {
  const char* name;
  size_t scalar_buckets;
  size_t semantic_buckets;
};

double RunConfig(const Config& cfg, const baselines::BenchDataset& data,
                 int64_t lo, int64_t hi, size_t* segments_scanned) {
  baselines::BlendHouseSystemOptions opts = bench::DefaultBhOptions();
  opts.db = core::BlendHouseOptions::Fast();
  opts.db.ingest.max_segment_rows = 512;
  opts.db.settings.semantic_probe_buckets = 2;
  opts.scalar_partition_buckets = cfg.scalar_buckets;
  opts.semantic_buckets = cfg.semantic_buckets;
  baselines::BlendHouseSystem system(opts);
  if (!system.Load(data).ok()) return -1;

  // One instrumented query for the pruning stats.
  auto probe = system.db().Query(system.BuildSearchSql(
      {data.query(0), 10, 64, true, lo, hi}));
  *segments_scanned = probe.ok() ? probe->stats.segments_scanned : 0;

  return bench::SystemQps(system, data, 10, 64, 300, true, lo, hi).qps;
}

}  // namespace
}  // namespace blendhouse

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Fig. 16: performance of different partition strategies");

  baselines::DatasetSpec spec = bench::Scaled(baselines::LaionSmall());
  baselines::BenchDataset data = baselines::MakeDataset(spec);
  // Range predicate passing ~20% of rows (the caption-similarity filter of
  // the LAION workload, mapped onto the uniform attribute column).
  auto [lo, hi] = baselines::AttrRangeForSelectivity(0.2);

  Config configs[] = {{"random", 0, 0},
                      {"scalar", 8, 0},
                      {"semantic", 0, 8},
                      {"scalar+semantic", 8, 8}};
  std::printf("%-18s %10s %18s\n", "strategy", "QPS", "segments scanned");
  for (const Config& cfg : configs) {
    size_t scanned = 0;
    double qps = RunConfig(cfg, data, lo, hi, &scanned);
    std::printf("%-18s %10.0f %18zu\n", cfg.name, qps, scanned);
  }
  return 0;
}
