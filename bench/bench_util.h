#ifndef BLENDHOUSE_BENCH_BENCH_UTIL_H_
#define BLENDHOUSE_BENCH_BENCH_UTIL_H_

#include <atomic>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "baselines/blendhouse_system.h"
#include "baselines/dataset.h"
#include "baselines/milvus_sim.h"
#include "baselines/pgvector_sim.h"
#include "baselines/vectordb_iface.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"

namespace blendhouse::bench {

/// Shrink factor applied to every dataset so the full bench suite finishes
/// in minutes (calibrated for a single-core CI host). Set BH_BENCH_SCALE=1.0
/// in the environment for full size.
inline double BenchScale() {
  const char* env = std::getenv("BH_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 0.25;
}

/// HNSW construction parameters shared by every system in the comparison
/// benches, scaled down alongside the datasets.
inline size_t BenchHnswM() { return 8; }
inline size_t BenchHnswEfc() { return 60; }

/// Client insert-stream bandwidth shared by all systems (bytes/us); ~8 MB/s
/// models the per-stream gRPC/libpq ingest rates VectorDBBench sees.
inline double BenchIngestStreamBw() { return 4.0; }

/// BlendHouse adapter options with the shared HNSW construction parameters.
inline baselines::BlendHouseSystemOptions DefaultBhOptions() {
  baselines::BlendHouseSystemOptions o;
  o.index_params["M"] = std::to_string(BenchHnswM());
  o.index_params["EF_CONSTRUCTION"] = std::to_string(BenchHnswEfc());
  o.ingest_stream.bytes_per_micro = BenchIngestStreamBw();
  // Server-side ingestion pipeline: flushes (and their index builds) run in
  // the background, overlapping the client's insert stream.
  o.db.ingest.async_flush = true;
  return o;
}

inline baselines::MilvusSimOptions DefaultMilvusOptions() {
  baselines::MilvusSimOptions o;
  o.hnsw_m = BenchHnswM();
  o.hnsw_ef_construction = BenchHnswEfc();
  o.ingest_stream.bytes_per_micro = BenchIngestStreamBw();
  return o;
}

inline baselines::PgvectorSimOptions DefaultPgOptions() {
  baselines::PgvectorSimOptions o;
  o.hnsw_m = BenchHnswM();
  o.hnsw_ef_construction = BenchHnswEfc();
  o.ingest_stream.bytes_per_micro = BenchIngestStreamBw();
  return o;
}

inline baselines::DatasetSpec Scaled(baselines::DatasetSpec spec) {
  double scale = BenchScale();
  spec.n = static_cast<size_t>(static_cast<double>(spec.n) * scale);
  spec.num_queries =
      std::max<size_t>(16, static_cast<size_t>(spec.num_queries * scale));
  return spec;
}

struct QpsResult {
  double qps = 0;
  double mean_latency_ms = 0;
  double p99_latency_ms = 0;
  size_t errors = 0;
};

/// Drives `run_one(query_index)` from `threads` client threads for
/// `total_queries` queries, measuring throughput and latency. `run_one`
/// returns false on error.
inline QpsResult MeasureQps(const std::function<bool(size_t)>& run_one,
                            size_t total_queries, size_t threads = 4) {
  std::atomic<size_t> next{0};
  std::atomic<size_t> errors{0};
  std::vector<common::Histogram> latencies(threads);
  common::Timer wall;
  std::vector<std::thread> pool;
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= total_queries) break;
        common::Timer timer;
        if (!run_one(i)) errors.fetch_add(1);
        latencies[t].Add(timer.ElapsedMillis());
      }
    });
  }
  for (auto& th : pool) th.join();
  double seconds = wall.ElapsedSeconds();

  common::Histogram all;
  for (auto& h : latencies)
    for (double v : h.samples()) all.Add(v);
  QpsResult r;
  r.qps = static_cast<double>(total_queries) / seconds;
  r.mean_latency_ms = all.Mean();
  r.p99_latency_ms = all.Percentile(99);
  r.errors = errors.load();
  return r;
}

struct RecallTarget {
  int ef = 0;
  double recall = 0;
  bool reached = false;
};

/// Smallest ef_search (from a doubling sweep) reaching `target` average
/// recall over the dataset's queries; reports the best recall seen if the
/// target is unreachable (pgvector's hybrid failure mode).
inline RecallTarget FindEfForRecall(
    baselines::VectorSystem& system, const baselines::BenchDataset& data,
    double target, size_t k, bool filtered = false, int64_t lo = 0,
    int64_t hi = 0, int max_ef = 512) {
  RecallTarget best;
  size_t queries = std::min<size_t>(data.num_queries, 24);
  for (int ef = static_cast<int>(k); ef <= max_ef; ef *= 2) {
    double total = 0;
    for (size_t q = 0; q < queries; ++q) {
      baselines::SearchRequest req;
      req.query = data.query(q);
      req.k = k;
      req.ef_search = ef;
      req.filtered = filtered;
      req.lo = lo;
      req.hi = hi;
      auto hits = system.Search(req);
      if (!hits.ok()) continue;
      total += baselines::RecallOf(
          *hits, baselines::GroundTruth(data, data.query(q), k, filtered, lo,
                                        hi));
    }
    double recall = total / static_cast<double>(queries);
    if (recall > best.recall) {
      best.recall = recall;
      best.ef = ef;
    }
    if (recall >= target) {
      best.reached = true;
      best.ef = ef;
      best.recall = recall;
      break;
    }
  }
  return best;
}

/// QPS of a system at fixed ef over the dataset's query set.
/// Default one client thread: on a single-core host, concurrent clients
/// only add scheduler noise, and modeled network waits (proxy hops, libpq
/// round-trips) are genuine per-query latency for a single stream.
inline QpsResult SystemQps(baselines::VectorSystem& system,
                           const baselines::BenchDataset& data, size_t k,
                           int ef, size_t total_queries, bool filtered = false,
                           int64_t lo = 0, int64_t hi = 0,
                           size_t threads = 1) {
  return MeasureQps(
      [&](size_t i) {
        baselines::SearchRequest req;
        req.query = data.query(i % data.num_queries);
        req.k = k;
        req.ef_search = ef;
        req.filtered = filtered;
        req.lo = lo;
        req.hi = hi;
        return system.Search(req).ok();
      },
      total_queries, threads);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void QuietLogs() { common::SetLogLevel(common::LogLevel::kError); }

/// Dumps the process-wide metrics registry (DESIGN.md §10) filtered to the
/// given `bh_<subsystem>_` name prefixes. Benches print this after their
/// runs so the figures can be reconciled against the telemetry the system
/// itself exports. Note the registry accumulates across every system built
/// in the process — values are per-run only if the bench builds one system.
inline void PrintRegistrySnapshot(
    std::initializer_list<const char*> prefixes) {
  std::printf("\nMetrics registry snapshot:\n");
  for (const auto& sample :
       common::metrics::MetricsRegistry::Instance().Snapshot()) {
    bool match = prefixes.size() == 0;
    for (const char* prefix : prefixes)
      if (sample.name.rfind(prefix, 0) == 0) {
        match = true;
        break;
      }
    if (match)
      std::printf("  %-52s %.0f\n", sample.name.c_str(), sample.value);
  }
}

}  // namespace blendhouse::bench

#endif  // BLENDHOUSE_BENCH_BENCH_UTIL_H_
