// Fig. 15: QPS of the hybrid "1% filter" workload (99% of rows pass) with
// the cost-based optimizer enabled vs disabled (the CBO-off configuration
// defaults to the pre-filter strategy).
//
// Expected shape (paper): CBO-on picks post-filter and delivers materially
// higher QPS than the fixed pre-filter plan, which pays a full predicate
// bitmap over every segment per query.

#include <cstdio>

#include "baselines/blendhouse_system.h"
#include "bench/bench_util.h"

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Fig. 15: QPS with CBO enabled vs disabled");

  baselines::DatasetSpec spec = bench::Scaled(baselines::CohereSmall());
  baselines::BenchDataset data = baselines::MakeDataset(spec);
  baselines::BlendHouseSystem system(bench::DefaultBhOptions());
  if (!system.Load(data).ok()) return 1;

  auto [lo, hi] = baselines::AttrRangeForSelectivity(0.99);

  struct Config {
    const char* name;
    bool use_cbo;
  };
  std::printf("%-14s %12s %14s\n", "CBO", "QPS", "strategy");
  for (Config cfg : {Config{"enabled", true}, Config{"disabled", false}}) {
    system.settings().use_cbo = cfg.use_cbo;
    system.settings().use_plan_cache = cfg.use_cbo;  // cache carries CBO picks
    // Report the strategy the optimizer chose for this configuration.
    auto explain = system.db().Explain(system.BuildSearchSql(
        {data.query(0), 10, 64, true, lo, hi}));
    std::string strategy = "?";
    if (explain.ok()) {
      size_t pos = explain->find("strategy=");
      if (pos != std::string::npos)
        strategy = explain->substr(pos + 9, explain->find(' ', pos) - pos - 9);
    }
    // With CBO off, Explain still uses the session defaults; override label.
    if (!cfg.use_cbo) strategy = "pre_filter (fixed)";
    bench::QpsResult r =
        bench::SystemQps(system, data, 10, 64, 300, true, lo, hi);
    std::printf("%-14s %12.0f %14s\n", cfg.name, r.qps, strategy.c_str());
  }
  return 0;
}
