// Fig. 19: impact of the number of segments on query QPS, and compaction's
// role in keeping the count bounded under high write frequency.
//
// Expected shape (paper): QPS per worker falls as the segment count grows
// (more per-segment search/merge overhead); compaction converges the count
// back into the efficient range.

#include <cstdio>

#include "baselines/blendhouse_system.h"
#include "bench/bench_util.h"

namespace blendhouse {
namespace {

/// Builds a system whose flushed segments have at most `segment_rows` rows,
/// yielding a controlled live segment count.
double QpsAtSegmentSize(size_t segment_rows,
                        const baselines::BenchDataset& data,
                        size_t* segments) {
  baselines::BlendHouseSystemOptions opts = bench::DefaultBhOptions();
  opts.db = core::BlendHouseOptions::Fast();
  opts.db.ingest.max_segment_rows = segment_rows;
  opts.db.ingest.flush_threshold_rows = segment_rows;
  opts.insert_batch = segment_rows;
  baselines::BlendHouseSystem system(opts);
  if (!system.Load(data).ok()) return -1;
  *segments = system.db().engine("bench")->Snapshot().segments.size();
  return bench::SystemQps(system, data, 10, 64, 200).qps;
}

}  // namespace
}  // namespace blendhouse

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Fig. 19: query QPS vs number of segments");

  baselines::DatasetSpec spec = bench::Scaled(baselines::CohereSmall());
  spec.n /= 2;
  baselines::BenchDataset data = baselines::MakeDataset(spec);

  std::printf("%-18s %12s %10s\n", "segment rows", "segments", "QPS");
  for (size_t rows : {256u, 512u, 1024u, 2048u, 4096u}) {
    size_t segments = 0;
    double qps = QpsAtSegmentSize(rows, data, &segments);
    std::printf("%-18zu %12zu %10.0f\n", rows, segments, qps);
  }

  // Compaction converges a fragmented table back to the efficient range.
  baselines::BlendHouseSystemOptions opts = bench::DefaultBhOptions();
  opts.db = core::BlendHouseOptions::Fast();
  opts.db.ingest.max_segment_rows = 256;
  opts.db.ingest.flush_threshold_rows = 256;
  opts.db.ingest.compaction_target_rows = 4096;
  opts.insert_batch = 256;
  baselines::BlendHouseSystem system(opts);
  if (!system.Load(data).ok()) return 1;
  size_t before = system.db().engine("bench")->Snapshot().segments.size();
  double qps_before = bench::SystemQps(system, data, 10, 64, 200).qps;
  if (!system.db().ExecuteSql("OPTIMIZE TABLE bench;").ok()) return 1;
  size_t after = system.db().engine("bench")->Snapshot().segments.size();
  double qps_after = bench::SystemQps(system, data, 10, 64, 200).qps;
  std::printf("\ncompaction: %zu segments (%.0f QPS) -> %zu segments"
              " (%.0f QPS)\n", before, qps_before, after, qps_after);
  return 0;
}
