// Ablations for the design choices DESIGN.md calls out, beyond the paper's
// own figures:
//  (a) pipelined per-segment index builds vs. staged build-after-write
//      (the mechanism behind Table IV, isolated inside one system);
//  (b) multi-probe vs. classic single-probe consistent hashing: load
//      balance and reshuffle fraction on scale-out (Fig. 3's rationale);
//  (c) the hierarchical index cache: per-acquire latency at each tier
//      (memory / local disk / remote), the "why three tiers" argument;
//  (d) granule (sparse-index) pruning on/off for the pre-filter bitmap.

#include <cstdio>
#include <map>

#include "baselines/blendhouse_system.h"
#include "bench/bench_util.h"
#include "cluster/consistent_hash.h"
#include "cluster/index_cache.h"
#include "common/timer.h"
#include "storage/lsm_engine.h"
#include "tests/test_util.h"

namespace blendhouse {
namespace {

void AblatePipelinedIngest(const baselines::BenchDataset& data) {
  std::printf("\n(a) pipelined vs staged index builds (one system, %zu rows)\n",
              data.n);
  std::printf("%-22s %14s\n", "ingest mode", "load time (s)");
  for (bool pipelined : {true, false}) {
    baselines::BlendHouseSystemOptions opts = bench::DefaultBhOptions();
    opts.preload = false;
    opts.db.ingest.pipelined_index_build = pipelined;
    opts.db.ingest.async_flush = pipelined;  // staged = fully synchronous
    baselines::BlendHouseSystem system(opts);
    common::Timer t;
    if (!system.Load(data).ok()) return;
    std::printf("%-22s %14.2f\n", pipelined ? "pipelined" : "staged",
                t.ElapsedSeconds());
  }
}

void AblateConsistentHashing() {
  std::printf("\n(b) multi-probe vs single-probe consistent hashing"
              " (8 workers, 4000 segments)\n");
  std::printf("%-10s %14s %16s\n", "probes", "max/min load",
              "moved on +1 node");
  for (size_t probes : {1u, 5u, 21u}) {
    cluster::ConsistentHashRing ring(probes);
    for (int w = 0; w < 8; ++w) ring.AddNode("w" + std::to_string(w));
    std::map<std::string, int> load;
    std::map<std::string, std::string> owner;
    for (int s = 0; s < 4000; ++s) {
      std::string key = "segment_" + std::to_string(s);
      owner[key] = ring.GetNode(key);
      load[owner[key]]++;
    }
    int mn = 1 << 30, mx = 0;
    for (auto& [_, c] : load) {
      mn = std::min(mn, c);
      mx = std::max(mx, c);
    }
    ring.AddNode("w8");
    size_t moved = 0;
    for (auto& [key, prev] : owner)
      if (ring.GetNode(key) != prev) ++moved;
    std::printf("%-10zu %13.2fx %15.1f%%\n", probes,
                static_cast<double>(mx) / std::max(1, mn),
                100.0 * static_cast<double>(moved) / owner.size());
  }
  std::printf("(ideal move fraction at 8->9 workers: 11.1%%)\n");
}

void AblateCacheTiers(const baselines::BenchDataset& data) {
  std::printf("\n(c) hierarchical index cache: per-acquire latency by tier\n");
  storage::ObjectStore store;  // realistic remote latency
  common::ThreadPool pool(2);
  storage::TableSchema schema;
  schema.table_name = "t";
  schema.columns = {{"id", storage::ColumnType::kInt64},
                    {"emb", storage::ColumnType::kFloatVector}};
  vecindex::IndexSpec spec;
  spec.type = "HNSW";
  spec.dim = data.dim;
  spec.params["M"] = std::to_string(bench::BenchHnswM());
  spec.params["EF_CONSTRUCTION"] = std::to_string(bench::BenchHnswEfc());
  schema.index_spec = spec;
  schema.vector_column = 1;
  storage::IngestOptions ingest;
  ingest.max_segment_rows = data.n;
  storage::LsmEngine engine(schema, &store, &pool, ingest);
  std::vector<storage::Row> rows;
  for (size_t i = 0; i < data.n; ++i) {
    storage::Row row;
    row.values = {static_cast<int64_t>(i),
                  std::vector<float>(data.vector(i),
                                     data.vector(i) + data.dim)};
    rows.push_back(std::move(row));
  }
  if (!engine.Insert(std::move(rows)).ok() || !engine.Flush().ok()) return;
  storage::SegmentMeta meta = engine.Snapshot().segments[0];
  std::string key = storage::SegmentKeys::Index("t", meta.segment_id);

  cluster::HierarchicalIndexCache cache(&store);
  std::printf("%-14s %14s\n", "tier", "latency (ms)");
  const char* tiers[] = {"remote", "disk", "memory"};
  for (int round = 0; round < 3; ++round) {
    // Round 0: everything cold -> remote load. Round 1: memory evicted,
    // disk copy intact -> disk hit. Round 2: fully warm -> memory hit.
    if (round == 1) cache.EvictMemoryOnly(key);
    common::Timer t;
    auto got = cache.GetOrLoad(key, spec);
    if (!got.ok()) return;
    std::printf("%-14s %14.3f  (%s)\n", tiers[round], t.ElapsedMillis(),
                cluster::CacheOutcomeName(got->outcome));
  }
}

void AblateGranulePruning(const baselines::BenchDataset& data) {
  std::printf("\n(d) granule sparse-index pruning for pre-filter bitmaps\n");
  baselines::BlendHouseSystemOptions opts = bench::DefaultBhOptions();
  opts.db = core::BlendHouseOptions::Fast();
  baselines::BlendHouseSystem system(opts);
  if (!system.Load(data).ok()) return;
  // id is ingestion-ordered, so granule min/max marks prune a narrow id
  // range precisely; force the pre-filter plan so the bitmap build is the
  // measured work.
  system.settings().forced_strategy = sql::ExecStrategy::kPreFilter;
  system.settings().use_plan_cache = false;
  std::string sql_text =
      "SELECT id FROM bench WHERE id BETWEEN 100 AND 200 ORDER BY"
      " L2Distance(emb, " +
      [&] {
        std::string v = "[";
        for (size_t d = 0; d < data.dim; ++d)
          v += (d ? "," : "") + std::to_string(data.query(0)[d]);
        return v + "]";
      }() +
      ") LIMIT 10;";
  std::printf("%-22s %10s\n", "granule pruning", "QPS");
  for (bool granules : {false, true}) {
    system.settings().use_granule_pruning = granules;
    bench::QpsResult r = bench::MeasureQps(
        [&](size_t) { return system.db().QueryWithSettings(
                                  sql_text, system.settings())
                          .ok(); },
        200, 1);
    std::printf("%-22s %10.0f\n", granules ? "on" : "off", r.qps);
  }
}

}  // namespace
}  // namespace blendhouse

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Ablations: pipelining, hashing, cache tiers, granules");
  baselines::DatasetSpec spec = bench::Scaled(baselines::CohereSmall());
  baselines::BenchDataset data = baselines::MakeDataset(spec);
  AblatePipelinedIngest(data);
  AblateConsistentHashing();
  AblateCacheTiers(data);
  AblateGranulePruning(data);
  return 0;
}
