// Query-history smoke (DESIGN.md §15): proves the observability pipeline —
// per-query resource ledgers, system.query_log exactly-once recording,
// fingerprint profiles, and tail-based trace retention — against a live
// mixed workload, and gates its overhead. CI runs this in the release leg:
//
//   1. Every finished query of a 200-query mixed workload (filtered ANN,
//      unfiltered ANN, scalar scans, interleaved ingest) lands in
//      system.query_log exactly once, with a nonzero resource ledger and a
//      populated latency breakdown.
//   2. Identical-shape queries share one fingerprint in system.query_profile.
//   3. Tail-based retention: with head-sampling at 5%, >= 90% of ordinary
//      traces are dropped, while an injected slow query (10x work, caught by
//      the slow_query_threshold_ms floor) and an injected failing query are
//      both retained — and the retained slow trace renders through
//      system.query_trace(<id>).
//   4. Reconciliation: every finished query got exactly one retention
//      verdict (retained + dropped == finished == query_log appends).
//   5. The query-history path (fingerprinting, ledger fold, log append,
//      retention decision) must cost < 2% of a query.
//
// Exits non-zero on any violation, failing the CI step.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/trace.h"
#include "core/blendhouse.h"
#include "core/query_log.h"
#include "sql/parser.h"

namespace blendhouse {
namespace {

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace
}  // namespace blendhouse

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Query-history smoke: ledger + query_log + retention");

  constexpr size_t kDim = 32;
  core::BlendHouseOptions opts = core::BlendHouseOptions::Fast();
  opts.ingest.max_segment_rows = 1024;
  opts.trace.sample_rate = 0.05;  // head-sample the residual at 5%
  core::BlendHouse db(opts);
  if (!db.ExecuteSql("CREATE TABLE items (id Int64, attr Int64,"
                     " emb Array(Float32),"
                     " INDEX ann emb TYPE HNSW('DIM=32','M=8'));")
           .ok()) {
    std::printf("FAIL: create table\n");
    return 1;
  }
  baselines::DatasetSpec spec;
  spec.n = 6000;
  spec.dim = kDim;
  spec.clusters = 8;
  spec.num_queries = 32;
  baselines::BenchDataset data = baselines::MakeDataset(spec);
  auto ingest = [&](size_t begin, size_t end) {
    std::vector<storage::Row> rows;
    for (size_t i = begin; i < end; ++i) {
      storage::Row row;
      row.values = {static_cast<int64_t>(i),
                    static_cast<int64_t>(data.int_attr[i] % 100),
                    std::vector<float>(data.vector(i), data.vector(i) + kDim)};
      rows.push_back(std::move(row));
    }
    return db.Insert("items", std::move(rows)).ok() &&
           db.Flush("items").ok();
  };
  if (!ingest(0, 4000) || !db.PreloadTable("items").ok()) {
    std::printf("FAIL: ingest\n");
    return 1;
  }

  auto vec_literal = [&](size_t q) {
    std::string vec = "[";
    for (size_t d = 0; d < kDim; ++d)
      vec += (d ? "," : "") + std::to_string(data.query(q % 32)[d]);
    return vec + "]";
  };
  auto ann_sql = [&](size_t q, int k, int attr_below) {
    std::string sql = "SELECT id, dist FROM items";
    if (attr_below > 0) sql += " WHERE attr < " + std::to_string(attr_below);
    return sql + " ORDER BY L2Distance(emb, " + vec_literal(q) +
           ") AS dist LIMIT " + std::to_string(k) + ";";
  };

  // --- 1. Mixed workload --------------------------------------------------
  constexpr size_t kOrdinary = 200;
  size_t issued = 0;
  double q_start = NowMicros();
  for (size_t i = 0; i < kOrdinary; ++i) {
    std::string sql;
    switch (i % 4) {
      case 0: sql = ann_sql(i, 10, 50); break;               // filtered ANN
      case 1: sql = ann_sql(i, 10, 0); break;                // pure ANN
      case 2: sql = ann_sql(i, 10, 20 + static_cast<int>(i % 40)); break;
      default:                                               // scalar scan
        sql = "SELECT id, attr FROM items WHERE attr < " +
              std::to_string(5 + i % 10) + " LIMIT 20;";
    }
    if (!db.Query(sql).ok()) {
      std::printf("FAIL: workload query %zu\n", i);
      return 1;
    }
    ++issued;
    // Interleave ingest mid-workload so the read path sees segment churn.
    if (i == kOrdinary / 2 && !ingest(4000, 6000)) {
      std::printf("FAIL: mid-workload ingest\n");
      return 1;
    }
  }
  double mean_query_micros = (NowMicros() - q_start) / kOrdinary;

  if (db.query_log().total_appended() != issued) {
    std::printf("FAIL: query_log has %llu appends for %zu issued queries\n",
                static_cast<unsigned long long>(
                    db.query_log().total_appended()),
                issued);
    return 1;
  }
  auto logged = db.Query("SELECT query_id FROM system.query_log;");
  if (!logged.ok() || logged->rows.size() != issued) {
    std::printf("FAIL: system.query_log row count %zu != %zu issued\n",
                logged.ok() ? logged->rows.size() : 0, issued);
    return 1;
  }
  // Every record carries a nonzero ledger with a populated breakdown.
  for (const core::QueryLogRecord& rec : db.query_log().Records()) {
    const common::QueryLedger& l = rec.ledger;
    double breakdown =
        l.queue_wait_micros + l.compute_micros + l.sim_io_micros;
    if (rec.latency_micros <= 0 || breakdown <= 0 || l.rows_scanned == 0) {
      std::printf("FAIL: query %llu has an empty ledger "
                  "(latency=%.1f breakdown=%.1f rows=%llu)\n",
                  static_cast<unsigned long long>(rec.query_id),
                  rec.latency_micros, breakdown,
                  static_cast<unsigned long long>(l.rows_scanned));
      return 1;
    }
    if (rec.type == "ann" && rec.ledger.total_distance_comps() == 0) {
      std::printf("FAIL: ANN query %llu counted no distance computations\n",
                  static_cast<unsigned long long>(rec.query_id));
      return 1;
    }
  }
  std::printf("query_log: %zu queries, all ledgers populated\n", issued);

  // --- 2. Fingerprint profiles -------------------------------------------
  // The case-0 queries (50 of them) are literal-different but shape-equal:
  // one profile row must aggregate them all.
  auto profiles = db.Query(
      "SELECT fingerprint, count FROM system.query_profile;");
  if (!profiles.ok() || profiles->rows.empty()) {
    std::printf("FAIL: system.query_profile unreadable\n");
    return 1;
  }
  int64_t max_count = 0;
  for (const auto& row : profiles->rows)
    max_count = std::max(max_count, std::get<int64_t>(row.values[1]));
  // case 0 and case 2 share a shape (both filtered ANN), so the top profile
  // covers at least those 100 queries.
  if (max_count < static_cast<int64_t>(kOrdinary / 2)) {
    std::printf("FAIL: top fingerprint count %lld < %zu — identical-shape "
                "queries not sharing a profile\n",
                static_cast<long long>(max_count), kOrdinary / 2);
    return 1;
  }
  std::printf("query_profile: %zu shapes, top count %lld\n",
              profiles->rows.size(), static_cast<long long>(max_count));

  // --- 3. Tail-based retention -------------------------------------------
  // Injected slow query: 10x the ordinary work (full-table top-400 with a
  // wide beam), caught deterministically by the retention floor.
  if (!db.ExecuteSql("SET ef_search = 512;").ok() ||
      !db.ExecuteSql("SET slow_query_threshold_ms = 0.001;").ok()) {
    std::printf("FAIL: SET for slow query\n");
    return 1;
  }
  uint64_t slow_before = db.trace_sink().retained_slow();
  if (!db.Query(ann_sql(7, 400, 0)).ok()) {
    std::printf("FAIL: injected slow query\n");
    return 1;
  }
  ++issued;
  if (!db.ExecuteSql("SET slow_query_threshold_ms = 0;").ok() ||
      !db.ExecuteSql("SET ef_search = 64;").ok()) {
    std::printf("FAIL: SET reset\n");
    return 1;
  }
  if (db.trace_sink().retained_slow() != slow_before + 1) {
    std::printf("FAIL: injected slow query not retained\n");
    return 1;
  }
  // The retained slow trace renders as history.
  auto records = db.query_log().Records();
  uint64_t slow_trace_id = records.back().trace_id;
  if (records.back().trace_retention != std::string("slow")) {
    std::printf("FAIL: slow query retention is %s\n",
                records.back().trace_retention.c_str());
    return 1;
  }
  auto rendered = db.Query("SELECT * FROM system.query_trace(" +
                           std::to_string(slow_trace_id) + ");");
  if (!rendered.ok() || rendered->rows.empty()) {
    std::printf("FAIL: system.query_trace(%llu) did not render\n",
                static_cast<unsigned long long>(slow_trace_id));
    return 1;
  }
  std::printf("slow trace %llu retained and rendered (%zu lines)\n",
              static_cast<unsigned long long>(slow_trace_id),
              rendered->rows.size());

  // Injected failing query: retained by the always-keep-errors rule.
  if (db.Query("SELECT nonexistent FROM items ORDER BY L2Distance(emb, " +
               vec_literal(0) + ") LIMIT 3;")
          .ok()) {
    std::printf("FAIL: injected failing query succeeded\n");
    return 1;
  }
  ++issued;
  if (db.trace_sink().retained_error() != 1) {
    std::printf("FAIL: injected failing query not retained\n");
    return 1;
  }

  // Head-sampling dropped >= 90% of the ordinary traces.
  uint64_t dropped = db.trace_sink().sample_dropped();
  if (dropped < kOrdinary * 9 / 10) {
    std::printf("FAIL: only %llu of %zu ordinary traces dropped (< 90%%)\n",
                static_cast<unsigned long long>(dropped), kOrdinary);
    return 1;
  }

  // --- 4. Reconciliation ---------------------------------------------------
  auto& sink = db.trace_sink();
  uint64_t retained = sink.retained_error() + sink.retained_slow() +
                      sink.retained_sampled();
  if (retained + sink.sample_dropped() != sink.offered() ||
      sink.offered() != issued ||
      db.query_log().total_appended() != issued) {
    std::printf("FAIL: reconciliation: retained %llu + dropped %llu != "
                "offered %llu (issued %zu)\n",
                static_cast<unsigned long long>(retained),
                static_cast<unsigned long long>(sink.sample_dropped()),
                static_cast<unsigned long long>(sink.offered()), issued);
    return 1;
  }
  std::printf("retention: %llu retained (%llu error, %llu slow, %llu "
              "sampled) + %llu dropped == %llu finished\n",
              static_cast<unsigned long long>(retained),
              static_cast<unsigned long long>(sink.retained_error()),
              static_cast<unsigned long long>(sink.retained_slow()),
              static_cast<unsigned long long>(sink.retained_sampled()),
              static_cast<unsigned long long>(sink.sample_dropped()),
              static_cast<unsigned long long>(sink.offered()));

  // --- 5. Overhead budget --------------------------------------------------
  // Per-query cost of the history path: fingerprint normalization + hash,
  // the retention decision on the dropped (common) path, a threshold read,
  // and a full log append. Measured per op, summed, compared against the
  // workload's measured mean latency.
  const std::string probe_sql = ann_sql(0, 10, 50);
  constexpr int kOps = 20000;
  double t0 = NowMicros();
  for (int i = 0; i < kOps; ++i) {
    auto sig = sql::ParameterizedSignature(probe_sql);
    if (!sig.ok()) return 1;
    (void)core::QueryLog::Hash(*sig);
  }
  double fingerprint_us = (NowMicros() - t0) / kOps;

  core::QueryLog scratch_log;
  trace::TraceSink::Options sink_opts;
  sink_opts.sample_rate = 0.05;  // model the common mostly-dropped path
  trace::TraceSink scratch_sink(sink_opts);
  trace::TracePtr probe_trace = trace::Trace::Make("probe");
  probe_trace->StartSpan("query")->End();
  trace::TraceSink::Completion completion;
  completion.latency_micros = 500;
  t0 = NowMicros();
  for (int i = 0; i < kOps; ++i)
    (void)scratch_sink.Offer(*probe_trace, completion);
  double offer_us = (NowMicros() - t0) / kOps;

  uint64_t probe_hash = core::QueryLog::Hash("probe");
  t0 = NowMicros();
  for (int i = 0; i < kOps; ++i) {
    (void)scratch_log.SlowThresholdMicros(probe_hash);
    core::QueryLogRecord rec;
    rec.sql = probe_sql;
    rec.fingerprint = "probe";
    rec.fingerprint_hash = probe_hash;
    rec.latency_micros = 500;
    scratch_log.Append(std::move(rec));
  }
  double append_us = (NowMicros() - t0) / kOps;

  double history_us = fingerprint_us + offer_us + append_us;
  double ratio = history_us / mean_query_micros;
  std::printf("per-query history cost: fingerprint %.2fus + offer %.2fus + "
              "append %.2fus = %.2fus vs %.0fus query (%.2f%%)\n",
              fingerprint_us, offer_us, append_us, history_us,
              mean_query_micros, 100.0 * ratio);
  if (ratio >= 0.02) {
    std::printf("FAIL: query-history overhead %.2f%% >= 2%% budget\n",
                100.0 * ratio);
    return 1;
  }
  std::printf("query-history overhead within budget\n");

  bench::PrintRegistrySnapshot({"bh_trace_"});
  return 0;
}
