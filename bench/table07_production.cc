// Table VII: production image-search workload — filtered top-k at 99% target
// recall, comparing Milvus and BlendHouse with and without partitioning,
// plus pgvector (whose recall collapses).
//
// Expected shape (paper): BlendHouse ~ Milvus-Partition > Milvus without
// partitioning; BlendHouse-Partition fastest (4.21x over Milvus there);
// pgvector cannot reach the recall target.

#include <cstdio>
#include <memory>

#include "baselines/blendhouse_system.h"
#include "baselines/milvus_sim.h"
#include "baselines/pgvector_sim.h"
#include "bench/bench_util.h"
#include "common/histogram.h"
#include "common/timer.h"

namespace blendhouse {
namespace {

struct Row {
  const char* name;
  double recall;
  double latency;
  bool reached;
};

Row MeasureSystem(const char* name, baselines::VectorSystem& system,
                  const baselines::BenchDataset& data, size_t k,
                  bool filtered, int64_t lo, int64_t hi) {
  bench::RecallTarget target =
      bench::FindEfForRecall(system, data, 0.99, k, filtered, lo, hi);
  Row row{name, target.recall, 0, target.reached};
  if (!target.reached) return row;
  common::Histogram lat;
  size_t queries = std::min<size_t>(data.num_queries, 32);
  for (size_t q = 0; q < queries; ++q) {
    baselines::SearchRequest req;
    req.query = data.query(q);
    req.k = k;
    req.ef_search = target.ef;
    req.filtered = filtered;
    req.lo = lo;
    req.hi = hi;
    common::Timer timer;
    (void)system.Search(req);
    lat.Add(timer.ElapsedSeconds());
  }
  row.latency = lat.Mean();
  return row;
}

}  // namespace
}  // namespace blendhouse

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Table VII: production workload search latency");

  baselines::DatasetSpec spec = bench::Scaled(baselines::CohereSmall());
  spec.n *= 4;  // the production stand-in is the largest table in the suite
  spec.name = "production-s";
  baselines::BenchDataset data = baselines::MakeDataset(spec);
  const size_t k = 100;  // paper: top-1000 of 30M; scaled proportionally
  // Selective multi-predicate filter (~10% of rows pass), like the
  // production image-search workload's conjunctive conditions.
  auto [lo, hi] = baselines::AttrRangeForSelectivity(0.1);

  std::vector<Row> rows;

  {
    baselines::MilvusSim milvus(bench::DefaultMilvusOptions());
    if (!milvus.Load(data).ok()) return 1;
    rows.push_back(MeasureSystem("Milvus", milvus, data, k, true, lo, hi));
  }
  {
    baselines::MilvusSimOptions mopts = bench::DefaultMilvusOptions();
    mopts.attr_partitions = 4;
    baselines::MilvusSim milvus(mopts);
    if (!milvus.Load(data).ok()) return 1;
    rows.push_back(
        MeasureSystem("Milvus-Partition", milvus, data, k, true, lo, hi));
  }
  {
    baselines::BlendHouseSystem bh(bench::DefaultBhOptions());
    if (!bh.Load(data).ok()) return 1;
    rows.push_back(MeasureSystem("BlendHouse", bh, data, k, true, lo, hi));
  }
  {
    baselines::BlendHouseSystemOptions bopts = bench::DefaultBhOptions();
    bopts.scalar_partition_buckets = 4;
    bopts.semantic_buckets = 4;  // the paper's hybrid partitioning
    baselines::BlendHouseSystem bh(bopts);
    if (!bh.Load(data).ok()) return 1;
    rows.push_back(
        MeasureSystem("BlendHouse-Partition", bh, data, k, true, lo, hi));
  }
  {
    baselines::PgvectorSim pg(bench::DefaultPgOptions());
    if (!pg.Load(data).ok()) return 1;
    rows.push_back(MeasureSystem("pgvector", pg, data, k, true, lo, hi));
  }

  double milvus_latency = rows[0].latency;
  std::printf("%-22s %10s %14s %10s\n", "System", "Recall", "Latency (s)",
              "Speedup");
  for (const Row& row : rows) {
    if (!row.reached) {
      std::printf("%-22s  < %5.3f %14s %10s\n", row.name, row.recall, "-",
                  "-");
      continue;
    }
    std::printf("%-22s %10.5f %14.4f %9.2fx\n", row.name, row.recall,
                row.latency, milvus_latency / row.latency);
  }
  return 0;
}
