// Fig. 13: recall-vs-QPS curves of the index types (HNSW / HNSWSQ /
// IVFPQFS), measured at the index level with ef_search / nprobe sweeps.
//
// Expected shape (paper): HNSW reaches the highest recall ceiling; HNSWSQ
// tracks it with higher QPS at moderate recall; IVFPQFS is fastest at low
// recall but saturates earlier.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "tests/test_util.h"
#include "vecindex/index_factory.h"

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Fig. 13: recall vs QPS of different index types");

  const size_t n = static_cast<size_t>(20000 * bench::BenchScale());
  const size_t dim = 96;
  const size_t k = 10;
  // Overlapping clusters: the same hardness the system benches use.
  auto data = test::MakeClusteredVectors(n, dim, 16, 5, /*spread=*/1.0f);
  std::vector<vecindex::IdType> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<vecindex::IdType>(i);

  const size_t kNumQueries = 24;
  std::vector<std::vector<vecindex::IdType>> truth(kNumQueries);
  for (size_t q = 0; q < kNumQueries; ++q)
    truth[q] =
        test::BruteForceTopK(data, dim, data.data() + (q * 131 % n) * dim, k);

  std::printf("%-12s %10s %10s %10s\n", "index", "knob", "recall", "QPS");
  for (const char* type : {"HNSW", "HNSWSQ", "IVFPQFS"}) {
    vecindex::IndexSpec spec;
    spec.type = type;
    spec.dim = dim;
    spec.params["M"] = std::to_string(bench::BenchHnswM());
    spec.params["EF_CONSTRUCTION"] = std::to_string(bench::BenchHnswEfc());
    spec.params["NLIST"] = "128";
    spec.params["PQ_M"] = "12";
    auto index = vecindex::IndexFactory::Global().Create(spec);
    if (!index.ok()) return 1;
    if ((*index)->NeedsTraining() &&
        !(*index)->Train(data.data(), n).ok())
      return 1;
    if (!(*index)->AddWithIds(data.data(), ids.data(), n).ok()) return 1;

    bool ivf = std::string(type).rfind("IVF", 0) == 0;
    for (int knob : (ivf ? std::vector<int>{1, 2, 4, 8, 16, 32, 64}
                         : std::vector<int>{10, 20, 40, 80, 160, 320})) {
      vecindex::SearchParams params;
      params.k = static_cast<int>(k);
      params.ef_search = knob;
      params.nprobe = knob;
      params.refine_factor = 2;

      double total_recall = 0;
      for (size_t q = 0; q < kNumQueries; ++q) {
        auto hits = (*index)->SearchWithFilter(
            data.data() + (q * 131 % n) * dim, params);
        if (!hits.ok()) return 1;
        total_recall += test::Recall(*hits, truth[q]);
      }
      double recall = total_recall / kNumQueries;

      const size_t kTimed = 200;
      common::Timer timer;
      for (size_t q = 0; q < kTimed; ++q)
        (void)(*index)->SearchWithFilter(data.data() + (q * 37 % n) * dim,
                                         params);
      double qps = kTimed / timer.ElapsedSeconds();
      std::printf("BH-%-9s %10d %9.2f%% %10.0f\n", type, knob, recall * 100,
                  qps);
    }
  }
  return 0;
}
