// Fig. 9: QPS of BlendHouse, pgvector, and Milvus at recall@0.99 across the
// VectorDBBench workloads: pure vector search, hybrid with "1% filter"
// (99% of rows pass), and hybrid with "99% filter" (1% of rows pass).
//
// Expected shape (paper):
//  - vector search: BlendHouse ~ pgvector > Milvus (proxy hop overhead);
//  - 1% filter: BlendHouse & pgvector pick post-filter and beat Milvus's
//    bitmap pre-filter;
//  - 99% filter: BlendHouse (CBO) and Milvus (heuristic) go brute force over
//    the 1% survivors with very high QPS; pgvector's fixed post-filter
//    collapses below 10-35% recall and is reported as unable to reach 0.99.

#include <cstdio>
#include <memory>

#include "baselines/blendhouse_system.h"
#include "baselines/milvus_sim.h"
#include "baselines/pgvector_sim.h"
#include "bench/bench_util.h"

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Fig. 9: QPS at recall@0.99 (HNSW)");

  baselines::DatasetSpec spec = bench::Scaled(baselines::CohereSmall());
  baselines::BenchDataset data = baselines::MakeDataset(spec);
  const size_t k = 10;
  const size_t kMeasureQueries = 300;

  baselines::BlendHouseSystem blendhouse(bench::DefaultBhOptions());
  baselines::MilvusSim milvus(bench::DefaultMilvusOptions());
  baselines::PgvectorSim pgvector(bench::DefaultPgOptions());
  if (!blendhouse.Load(data).ok() || !milvus.Load(data).ok() ||
      !pgvector.Load(data).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  std::vector<std::pair<const char*, baselines::VectorSystem*>> systems = {
      {"BlendHouse", &blendhouse},
      {"Milvus", &milvus},
      {"pgvector", &pgvector}};

  struct Workload {
    const char* name;
    bool filtered;
    double pass_fraction;
  };
  Workload workloads[] = {{"vector-search", false, 1.0},
                          {"hybrid-filter-1%", true, 0.99},
                          {"hybrid-filter-99%", true, 0.01}};

  std::printf("%-20s %-12s %10s %10s %10s\n", "workload", "system", "ef",
              "recall", "QPS");
  for (const Workload& w : workloads) {
    auto [lo, hi] = baselines::AttrRangeForSelectivity(w.pass_fraction);
    for (auto& [name, system] : systems) {
      bench::RecallTarget target = bench::FindEfForRecall(
          *system, data, 0.99, k, w.filtered, lo, hi);
      if (!target.reached) {
        std::printf("%-20s %-12s %10s %9.2f%% %10s\n", w.name, name, "-",
                    target.recall * 100, "(recall unreachable)");
        continue;
      }
      bench::QpsResult qps =
          bench::SystemQps(*system, data, k, target.ef, kMeasureQueries,
                           w.filtered, lo, hi);
      std::printf("%-20s %-12s %10d %9.2f%% %10.0f\n", w.name, name,
                  target.ef, target.recall * 100, qps.qps);
    }
  }
  return 0;
}
