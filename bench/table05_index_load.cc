// Table V: end-to-end load time of the three most used index types
// (BH-HNSW, BH-HNSWSQ, BH-IVFPQFS) on the two datasets.
//
// Expected shape (paper): IVFPQFS < HNSWSQ < HNSW — quantized/IVF builds are
// cheaper than full graph construction.

#include <cstdio>

#include "baselines/blendhouse_system.h"
#include "bench/bench_util.h"
#include "common/timer.h"

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Table V: load time of different index types (seconds)");

  std::vector<baselines::DatasetSpec> specs = {
      bench::Scaled(baselines::CohereSmall()),
      bench::Scaled(baselines::OpenAiSmall())};
  const char* index_types[] = {"HNSW", "HNSWSQ", "IVFPQFS"};

  std::printf("%-12s", "Index");
  for (const auto& spec : specs)
    std::printf(" %10s(n=%zu)", spec.name.c_str(), spec.n);
  std::printf("\n");

  for (const char* type : index_types) {
    std::printf("BH-%-9s", type);
    for (const auto& spec : specs) {
      baselines::BenchDataset data = baselines::MakeDataset(spec);
      baselines::BlendHouseSystemOptions opts = bench::DefaultBhOptions();
      opts.index_type = type;
      opts.preload = false;
      baselines::BlendHouseSystem system(opts);
      common::Timer t;
      if (!system.Load(data).ok()) {
        std::printf(" %18s", "FAILED");
        continue;
      }
      std::printf(" %18.2f", t.ElapsedSeconds());
    }
    std::printf("\n");
  }
  return 0;
}
