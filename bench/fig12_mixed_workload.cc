// Fig. 12: read-QPS interference between vector search and index-building
// write workloads. The mixed configuration runs index builds on the read
// VW's worker pools (head-of-line blocking behind queries); the isolated
// configuration (BlendHouse's architecture) gives builds a dedicated VW.
//
// Expected shape (paper): read QPS in the mixed VW drops as write
// concurrency rises; the isolated configuration stays (nearly) flat.
// Writers are rate-limited so the comparison measures queue interference,
// not raw host-CPU saturation.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/blendhouse_system.h"
#include "bench/bench_util.h"
#include "tests/test_util.h"

namespace blendhouse {
namespace {

struct RunResult {
  double qps = -1;
  baselines::BlendHouseSystem::AccumulatedExecStats stats;
};

RunResult ReadQpsUnderWrites(bool separate_write_vw, size_t write_threads,
                             const baselines::BenchDataset& data) {
  baselines::BlendHouseSystemOptions opts = bench::DefaultBhOptions();
  opts.db.separate_write_vw = separate_write_vw;
  opts.db.remote_cost = storage::StorageCostModel::Instant();
  opts.db.rpc_cost.simulate_latency = false;
  opts.db.worker.cache.disk_cost = storage::StorageCostModel::Instant();
  opts.db.ingest.flush_threshold_rows = 256;
  opts.db.ingest.max_segment_rows = 256;
  // Cheap builds so each write batch is a short burst, not a CPU hog.
  opts.index_params["M"] = "8";
  opts.index_params["EF_CONSTRUCTION"] = "40";
  baselines::BlendHouseSystem system(opts);
  if (!system.Load(data).ok()) return {};
  (void)system.DrainExecStats();  // drop any warm-up accounting

  // Rate-limited background writers: each submits one 256-row batch then
  // sleeps, so total write CPU stays well below one core and the measured
  // difference is queue interference inside the read VW.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (size_t w = 0; w < write_threads; ++w) {
    writers.emplace_back([&, w] {
      common::Rng rng(100 + w);
      size_t dim = data.dim;
      int64_t next_id = 1000000 + static_cast<int64_t>(w) * 1000000;
      while (!stop.load()) {
        std::vector<storage::Row> rows;
        for (size_t i = 0; i < 256; ++i) {
          std::vector<float> vec(dim);
          for (auto& v : vec) v = rng.Gaussian();
          storage::Row row;
          row.values = {next_id++, rng.UniformInt(0, 999999), int64_t{0},
                        0.5, std::string("w"), std::move(vec)};
          rows.push_back(std::move(row));
        }
        (void)system.db().Insert("bench", std::move(rows));
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
      }
    });
  }

  bench::QpsResult r = bench::SystemQps(system, data, /*k=*/10,
                                        /*ef=*/64, /*queries=*/300,
                                        false, 0, 0, /*threads=*/2);
  stop.store(true);
  for (auto& t : writers) t.join();
  return {r.qps, system.DrainExecStats()};
}

void PrintBreakdownRow(const char* label, size_t write_threads,
                       const baselines::BlendHouseSystem::AccumulatedExecStats&
                           s) {
  double n = s.queries > 0 ? static_cast<double>(s.queries) : 1.0;
  std::printf("%-10s %6zu %12.0f %12.0f %12.0f %12.0f %8zu\n", label,
              write_threads, s.exec_micros / n, s.queue_wait_micros / n,
              s.compute_micros / n, s.sim_io_micros / n, s.retries);
}

}  // namespace
}  // namespace blendhouse

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Fig. 12: isolated vs mixed read/write workload QPS");

  baselines::DatasetSpec spec = bench::Scaled(baselines::CohereSmall());
  spec.n /= 2;  // this bench rebuilds the system 8 times
  baselines::BenchDataset data = baselines::MakeDataset(spec);

  std::vector<std::pair<size_t, std::array<RunResult, 2>>> runs;
  std::printf("%-18s %14s %14s %10s\n", "write threads", "isolated QPS",
              "mixed-VW QPS", "mixed/iso");
  for (size_t w : {0u, 2u, 4u, 8u}) {
    RunResult isolated = ReadQpsUnderWrites(true, w, data);
    RunResult mixed = ReadQpsUnderWrites(false, w, data);
    std::printf("%-18zu %14.0f %14.0f %9.2f%%\n", w, isolated.qps, mixed.qps,
                100.0 * mixed.qps / isolated.qps);
    runs.push_back({w, {isolated, mixed}});
  }

  std::printf("\nExecStats breakdown (per-query averages, us):\n");
  std::printf("%-10s %6s %12s %12s %12s %12s %8s\n", "config", "writes",
              "exec", "queue wait", "compute", "sim I/O", "retries");
  for (const auto& [w, pair] : runs) {
    PrintBreakdownRow("isolated", w, pair[0].stats);
    PrintBreakdownRow("mixed", w, pair[1].stats);
  }
  std::printf(
      "\nReading: dedicating a VW to index builds keeps read QPS flat as"
      " write\nconcurrency grows; the mixed VW degrades — the isolation"
      " benefit of the\ndisaggregated architecture. The breakdown shows the"
      " degradation is queue\nwait (segment tasks parked behind index-build"
      " work), not compute.\n");
  bench::PrintRegistrySnapshot(
      {"bh_sql_", "bh_threadpool_", "bh_scheduler_", "bh_lsm_"});
  return 0;
}
