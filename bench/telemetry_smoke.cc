// Telemetry smoke: proves the observability layer end to end at tiny scale
// and asserts its overhead budget. CI runs this in the release leg:
//
//   1. EXPLAIN ANALYZE on a hybrid top-k must execute and render a span tree
//      containing the full taxonomy (query/plan/execute/segment_scan).
//   2. The metrics + tracing fast path must cost < 2% of a query: per-op
//      costs of the primitives are measured directly, multiplied by the op
//      counts a real query incurs (span count read from its own trace), and
//      compared against the measured query latency.
//
// Exits non-zero on any violation, failing the CI step.

#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/blendhouse.h"

namespace blendhouse {
namespace {

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// ns per Counter::Add on the thread-sharded fast path.
double MeasureCounterNs() {
  auto* c = common::metrics::MetricsRegistry::Instance().GetCounter(
      "bh_smoke_calibration_total");
  constexpr int kOps = 1000000;
  double start = NowMicros();
  for (int i = 0; i < kOps; ++i) c->Add(1);
  return (NowMicros() - start) * 1000.0 / kOps;
}

/// ns per HistogramMetric::Record (bucket search + three relaxed RMWs).
double MeasureHistogramNs() {
  auto* h = common::metrics::MetricsRegistry::Instance().GetHistogram(
      "bh_smoke_calibration_micros");
  constexpr int kOps = 500000;
  double start = NowMicros();
  for (int i = 0; i < kOps; ++i) h->Record(static_cast<double>(i % 10000));
  return (NowMicros() - start) * 1000.0 / kOps;
}

/// ns per span lifecycle (StartSpan + SetBreakdown + End + record fold).
double MeasureSpanNs() {
  constexpr int kOps = 100000;
  trace::TracePtr trace = trace::Trace::Make("calibration");
  double start = NowMicros();
  for (int i = 0; i < kOps; ++i) {
    trace::SpanPtr span = trace->StartSpan("s");
    span->SetBreakdown(1, 2, 3);
    span->End();
  }
  return (NowMicros() - start) * 1000.0 / kOps;
}

}  // namespace
}  // namespace blendhouse

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Telemetry smoke: EXPLAIN ANALYZE + overhead budget");

  // Sized so one query does representative work (~1 ms): the 2% budget is
  // against a real query, not a toy one whose cost rounds to the fixed span
  // overhead. Still finishes in seconds — CI runs this every release build.
  constexpr size_t kDim = 64;
  core::BlendHouseOptions opts = core::BlendHouseOptions::Fast();
  opts.ingest.max_segment_rows = 1024;
  opts.trace.sample_rate = 1.0;
  core::BlendHouse db(opts);
  if (!db.ExecuteSql("CREATE TABLE items (id Int64, attr Int64,"
                     " emb Array(Float32),"
                     " INDEX ann emb TYPE HNSW('DIM=64','M=8'));")
           .ok()) {
    std::printf("FAIL: create table\n");
    return 1;
  }
  baselines::DatasetSpec spec;
  spec.n = 8000;
  spec.dim = kDim;
  spec.clusters = 8;
  spec.num_queries = 16;
  baselines::BenchDataset data = baselines::MakeDataset(spec);
  std::vector<storage::Row> rows;
  for (size_t i = 0; i < data.n; ++i) {
    storage::Row row;
    row.values = {static_cast<int64_t>(i),
                  static_cast<int64_t>(data.int_attr[i] % 100),
                  std::vector<float>(data.vector(i), data.vector(i) + kDim)};
    rows.push_back(std::move(row));
  }
  if (!db.Insert("items", std::move(rows)).ok() || !db.Flush("items").ok()) {
    std::printf("FAIL: ingest\n");
    return 1;
  }

  auto sql_for = [&](size_t q) {
    std::string vec = "[";
    for (size_t d = 0; d < kDim; ++d)
      vec += (d ? "," : "") + std::to_string(data.query(q % 16)[d]);
    vec += "]";
    return "SELECT id, dist FROM items WHERE attr < 50 ORDER BY "
           "L2Distance(emb, " + vec + ") AS dist LIMIT 10;";
  };

  // --- 1. EXPLAIN ANALYZE end to end -------------------------------------
  auto explained = db.ExplainAnalyze(sql_for(0));
  if (!explained.ok()) {
    std::printf("FAIL: EXPLAIN ANALYZE: %s\n",
                explained.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", explained->c_str());
  for (const char* required :
       {"query", "plan", "execute", "segment_scan", "rows="}) {
    if (explained->find(required) == std::string::npos) {
      std::printf("FAIL: EXPLAIN ANALYZE output missing \"%s\"\n", required);
      return 1;
    }
  }

  // --- 2. Overhead budget -------------------------------------------------
  constexpr int kQueries = 40;
  double q_start = NowMicros();
  for (int i = 0; i < kQueries; ++i) {
    if (!db.Query(sql_for(static_cast<size_t>(i))).ok()) {
      std::printf("FAIL: query %d\n", i);
      return 1;
    }
  }
  double query_micros = (NowMicros() - q_start) / kQueries;

  // Op counts per query: spans from the query's own retained trace; counter
  // and histogram op counts are a deliberate overestimate of the touchpoints
  // on the query path (object store, caches, pools, SQL layer).
  auto traces = db.trace_sink().Traces();
  size_t spans_per_query = traces.empty() ? 32 : traces.back().spans.size();
  constexpr double kCounterOps = 64;
  constexpr double kHistogramOps = 16;

  double counter_ns = MeasureCounterNs();
  double histogram_ns = MeasureHistogramNs();
  double span_ns = MeasureSpanNs();
  double telemetry_micros =
      (static_cast<double>(spans_per_query) * span_ns +
       kCounterOps * counter_ns + kHistogramOps * histogram_ns) /
      1000.0;
  double ratio = telemetry_micros / query_micros;

  std::printf("per-op: counter %.1f ns, histogram %.1f ns, span %.1f ns\n",
              counter_ns, histogram_ns, span_ns);
  std::printf("per-query: %zu spans, %.0f counters, %.0f histograms -> "
              "%.1f us telemetry vs %.0f us query (%.2f%%)\n",
              spans_per_query, kCounterOps, kHistogramOps, telemetry_micros,
              query_micros, 100.0 * ratio);
  if (ratio >= 0.02) {
    std::printf("FAIL: telemetry overhead %.2f%% >= 2%% budget\n",
                100.0 * ratio);
    return 1;
  }
  std::printf("telemetry overhead within budget\n");

  // --- 3. Iterator + rerank counters registered --------------------------
  // A forced post-filter query runs on the native resumable iterator and
  // must land the bh_iter_* counters; an int8-precision table's query runs
  // the exact-fp32 rerank tier and must land bh_exec_fp32_rerank_rows.
  sql::QuerySettings pf = db.options().settings;
  pf.forced_strategy = sql::ExecStrategy::kPostFilter;
  if (!db.QueryWithSettings(sql_for(1), pf).ok()) {
    std::printf("FAIL: forced post-filter query\n");
    return 1;
  }
  if (!db.ExecuteSql("CREATE TABLE items_q (id Int64, attr Int64,"
                     " emb Array(Float32), INDEX ann emb TYPE "
                     "HNSW('DIM=64','M=8','PRECISION=int8'));")
           .ok()) {
    std::printf("FAIL: create int8 table\n");
    return 1;
  }
  std::vector<storage::Row> qrows;
  for (size_t i = 0; i < 2000; ++i) {
    storage::Row row;
    row.values = {static_cast<int64_t>(i),
                  static_cast<int64_t>(data.int_attr[i] % 100),
                  std::vector<float>(data.vector(i), data.vector(i) + kDim)};
    qrows.push_back(std::move(row));
  }
  if (!db.Insert("items_q", std::move(qrows)).ok() ||
      !db.Flush("items_q").ok() || !db.PreloadTable("items_q").ok()) {
    std::printf("FAIL: int8 ingest\n");
    return 1;
  }
  {
    std::string vec = "[";
    for (size_t d = 0; d < kDim; ++d)
      vec += (d ? "," : "") + std::to_string(data.query(0)[d]);
    vec += "]";
    if (!db.Query("SELECT id, dist FROM items_q ORDER BY L2Distance(emb, " +
                  vec + ") AS dist LIMIT 10;")
             .ok()) {
      std::printf("FAIL: int8 query\n");
      return 1;
    }
  }
  auto& reg = common::metrics::MetricsRegistry::Instance();
  struct NamedCheck {
    const char* name;
    bool must_be_nonzero;
  };
  for (const NamedCheck& check :
       {NamedCheck{"bh_iter_batches", false},
        NamedCheck{"bh_iter_rows_visited", true},
        NamedCheck{"bh_iter_recompute_rounds", false},
        NamedCheck{"bh_exec_fp32_rerank_rows", true}}) {
    bool present = false;
    double value = 0;
    for (const auto& sample : reg.Snapshot()) {
      if (sample.name == check.name) {
        present = true;
        value = sample.value;
      }
    }
    if (!present) {
      std::printf("FAIL: %s not registered after workload\n", check.name);
      return 1;
    }
    if (check.must_be_nonzero && value <= 0) {
      std::printf("FAIL: %s is zero after workload\n", check.name);
      return 1;
    }
  }
  std::printf("iterator + rerank counters registered\n");

  bench::PrintRegistrySnapshot(
      {"bh_sql_", "bh_object_store_", "bh_iter_", "bh_exec_"});
  return 0;
}
