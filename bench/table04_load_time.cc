// Table IV: end-to-end load time (ingest until queryable) of BlendHouse,
// Milvus, and pgvector on the Cohere- and OpenAI-like datasets, all building
// HNSW with the same construction parameters.
//
// Expected shape (paper): BlendHouse < Milvus < pgvector. BlendHouse wins by
// pipelining per-segment index builds with segment writes; Milvus stages
// write -> build -> load; pgvector builds one monolithic graph on a single
// thread.

#include <cstdio>
#include <memory>

#include "baselines/blendhouse_system.h"
#include "baselines/milvus_sim.h"
#include "baselines/pgvector_sim.h"
#include "bench/bench_util.h"
#include "common/timer.h"

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Table IV: load time of different systems (seconds)");

  std::vector<baselines::DatasetSpec> specs = {
      bench::Scaled(baselines::CohereSmall()),
      bench::Scaled(baselines::OpenAiSmall())};

  std::printf("%-12s", "System");
  for (const auto& spec : specs)
    std::printf(" %10s(n=%zu)", spec.name.c_str(), spec.n);
  std::printf("\n");

  std::vector<std::vector<double>> times(3);
  for (const auto& spec : specs) {
    baselines::BenchDataset data = baselines::MakeDataset(spec);

    {
      baselines::BlendHouseSystemOptions opts = bench::DefaultBhOptions();
      opts.preload = false;  // load time = until queryable, preload separate
      baselines::BlendHouseSystem bh(opts);
      common::Timer t;
      if (!bh.Load(data).ok()) return 1;
      times[0].push_back(t.ElapsedSeconds());
    }
    {
      baselines::MilvusSim milvus(bench::DefaultMilvusOptions());
      common::Timer t;
      if (!milvus.Load(data).ok()) return 1;
      times[1].push_back(t.ElapsedSeconds());
    }
    {
      baselines::PgvectorSim pg(bench::DefaultPgOptions());
      common::Timer t;
      if (!pg.Load(data).ok()) return 1;
      times[2].push_back(t.ElapsedSeconds());
    }
  }

  const char* names[] = {"BlendHouse", "Milvus", "pgvector"};
  for (int s = 0; s < 3; ++s) {
    std::printf("%-12s", names[s]);
    for (double t : times[s]) std::printf(" %18.2f", t);
    std::printf("\n");
  }
  std::printf(
      "\nReading: BlendHouse's pipelined per-segment builds finish first;"
      " Milvus pays\nstaged write->build->load over shared storage; pgvector"
      " is bound by its\nsingle-threaded monolithic graph build.\n");
  return 0;
}
