// Table VI: resident memory of the different index types over the same
// (production-stand-in) dataset.
//
// Expected shape (paper): HNSW > HNSWSQ (~2.5x smaller) > IVFPQFS (~6.5x
// smaller) — SQ8 quarters the vector payload; PQ keeps only short codes.

#include <cstdio>

#include "bench/bench_util.h"
#include "tests/test_util.h"
#include "vecindex/index_factory.h"

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Table VI: memory consumption of different index types");

  const size_t n =
      static_cast<size_t>(40000 * bench::BenchScale());
  const size_t dim = 128;
  auto data = test::MakeClusteredVectors(n, dim, 64, 3);
  std::vector<vecindex::IdType> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<vecindex::IdType>(i);

  std::printf("(n=%zu, dim=%zu)\n", n, dim);
  std::printf("%-14s %12s %10s\n", "Index", "Size (MB)", "vs HNSW");
  double hnsw_mb = 0;
  for (const char* type : {"HNSW", "HNSWSQ", "IVFPQFS"}) {
    vecindex::IndexSpec spec;
    spec.type = type;
    spec.dim = dim;
    spec.params["NLIST"] = "256";
    spec.params["PQ_M"] = "16";
    auto index = vecindex::IndexFactory::Global().Create(spec);
    if (!index.ok()) return 1;
    if ((*index)->NeedsTraining() &&
        !(*index)->Train(data.data(), n).ok())
      return 1;
    if (!(*index)->AddWithIds(data.data(), ids.data(), n).ok()) return 1;
    double mb =
        static_cast<double>((*index)->MemoryUsage()) / (1024.0 * 1024.0);
    if (hnsw_mb == 0) hnsw_mb = mb;
    std::printf("BH-%-11s %12.1f %9.2fx\n", type, mb, mb / hnsw_mb);
  }
  std::printf(
      "\nNote: IVFPQFS memory counts codes + codebooks + centroids; the raw"
      " vectors\nused for optional re-ranking live in cold segment storage,"
      " not the index.\n");
  return 0;
}
