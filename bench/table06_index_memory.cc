// Table VI: resident memory of the different index types over the same
// (production-stand-in) dataset.
//
// Expected shape (paper): HNSW > HNSWSQ (~2.5x smaller) > IVFPQFS (~6.5x
// smaller) — SQ8 quarters the vector payload; PQ keeps only short codes.
// The reduced-precision sweep (DESIGN.md §13) shows the same lever on the
// first-pass tier: fp16/bf16 halve and int8 quarters the vector payload,
// with the exact fp32 copies living in cold segment storage for the
// executor's rerank, not in the index.

#include <cstdio>

#include "bench/bench_util.h"
#include "tests/test_util.h"
#include "vecindex/index_factory.h"

namespace {

blendhouse::vecindex::VectorIndexPtr BuildIndex(
    const char* type, const char* precision, size_t dim, const float* data,
    const blendhouse::vecindex::IdType* ids, size_t n) {
  using namespace blendhouse;
  vecindex::IndexSpec spec;
  spec.type = type;
  spec.dim = dim;
  spec.params["NLIST"] = "256";
  spec.params["PQ_M"] = "16";
  if (precision != nullptr) spec.params["PRECISION"] = precision;
  auto index = vecindex::IndexFactory::Global().Create(spec);
  if (!index.ok()) return nullptr;
  if ((*index)->NeedsTraining() && !(*index)->Train(data, n).ok())
    return nullptr;
  if (!(*index)->AddWithIds(data, ids, n).ok()) return nullptr;
  return std::move(*index);
}

}  // namespace

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Table VI: memory consumption of different index types");

  const size_t n =
      static_cast<size_t>(40000 * bench::BenchScale());
  const size_t dim = 128;
  auto data = test::MakeClusteredVectors(n, dim, 64, 3);
  std::vector<vecindex::IdType> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<vecindex::IdType>(i);

  std::printf("(n=%zu, dim=%zu)\n", n, dim);
  std::printf("%-14s %12s %10s\n", "Index", "Size (MB)", "vs HNSW");
  double hnsw_mb = 0;
  for (const char* type : {"HNSW", "HNSWSQ", "IVFPQFS"}) {
    auto index = BuildIndex(type, nullptr, dim, data.data(), ids.data(), n);
    if (index == nullptr) return 1;
    double mb = static_cast<double>(index->MemoryUsage()) / (1024.0 * 1024.0);
    if (hnsw_mb == 0) hnsw_mb = mb;
    std::printf("BH-%-11s %12.1f %9.2fx\n", type, mb, mb / hnsw_mb);
  }

  // Reduced-precision first-pass tier (DESIGN.md §13): FLAT isolates the
  // vector payload (the graph links of HNSW dilute the ratio), so the int8
  // row is where the 4x storage win must show.
  std::printf("\n%-14s %12s %10s\n", "Index", "Size (MB)", "vs fp32");
  double flat_fp32 = 0, flat_int8 = 0;
  for (const char* precision : {"FP32", "FP16", "BF16", "INT8"}) {
    auto index =
        BuildIndex("FLAT", precision, dim, data.data(), ids.data(), n);
    if (index == nullptr) return 1;
    double mb = static_cast<double>(index->MemoryUsage()) / (1024.0 * 1024.0);
    if (flat_fp32 == 0) flat_fp32 = mb;
    if (std::string(precision) == "INT8") flat_int8 = mb;
    std::printf("FLAT-%-9s %12.1f %9.2fx\n", precision, mb, mb / flat_fp32);
  }
  double hnsw_fp32 = 0;
  for (const char* precision : {"FP32", "FP16", "BF16", "INT8"}) {
    auto index =
        BuildIndex("HNSW", precision, dim, data.data(), ids.data(), n);
    if (index == nullptr) return 1;
    double mb = static_cast<double>(index->MemoryUsage()) / (1024.0 * 1024.0);
    if (hnsw_fp32 == 0) hnsw_fp32 = mb;
    std::printf("HNSW-%-9s %12.1f %9.2fx\n", precision, mb, mb / hnsw_fp32);
  }
  std::printf(
      "\nNote: IVFPQFS memory counts codes + codebooks + centroids; reduced-"
      "\nprecision indexes count packed codes only — the raw fp32 vectors the"
      "\nexecutor reranks with live in cold segment storage, not the index.\n");

  // Hard gate, always on: the int8 tier must actually deliver the storage
  // win (codes + ids vs floats + ids, so the bound is 0.3x, not 0.25x).
  if (flat_int8 > 0.3 * flat_fp32) {
    std::fprintf(stderr,
                 "BENCH ASSERT FAILED: FLAT int8 resident bytes %.1f MB > "
                 "0.3x fp32 (%.1f MB)\n",
                 flat_int8, flat_fp32);
    return 1;
  }
  std::printf("bench assert: FLAT int8 = %.2fx fp32 resident bytes (<= 0.3x)\n",
              flat_int8 / flat_fp32);
  return 0;
}
