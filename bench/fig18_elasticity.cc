// Fig. 18: immediate query behaviour while the read VW scales from 2 to 8
// workers. With vector search serving, a new worker answers its reassigned
// segments through the previous owner's hot cache at once; the contrasting
// wait-for-load policy blocks each first touch on a remote index load.
//
// Expected shape (paper): with serving, QPS holds/rises and p99 stays flat
// through every scale-out step; the load-blocking policy dips sharply right
// after each step. (On a multi-core host the serving curve additionally
// grows near-linearly with workers; a single-core host caps total compute,
// so the signal here is the absence of post-scale dips.)

#include <cstdio>

#include "baselines/blendhouse_system.h"
#include "bench/bench_util.h"

namespace blendhouse {
namespace {

struct StepResult {
  double qps;
  double p99_ms;
  uint64_t serving_rpcs;
};

StepResult RunScalingRun(bool serving, const baselines::BenchDataset& data) {
  baselines::BlendHouseSystemOptions opts = bench::DefaultBhOptions();
  opts.db.read_workers = 2;
  opts.db.worker_threads = 2;
  opts.db.ingest.max_segment_rows = 512;  // enough segments to spread
  // Index payloads take seconds to pull from remote storage (the regime the
  // paper's production indexes live in): blocking on a load is expensive,
  // serving is not.
  opts.db.remote_cost.bytes_per_micro = 2.0;  // ~2 MB/s per stream
  opts.db.settings.acquire.allow_remote_serving = serving;
  opts.db.settings.acquire.allow_brute_force = false;  // contrast: block
  opts.db.settings.acquire.force_local_load = !serving;
  baselines::BlendHouseSystem system(opts);
  if (!system.Load(data).ok()) return {-1, -1, 0};
  // Warm the column caches once so the measurement isolates scaling
  // behaviour rather than first-ever reads.
  (void)bench::SystemQps(system, data, 10, 64, data.num_queries);

  std::printf("%-26s %8s %10s %12s %14s\n",
              serving ? "with vector serving" : "wait-for-load", "workers",
              "QPS", "p99 (ms)", "serving RPCs");
  StepResult last{0, 0, 0};
  uint64_t rpc_base = system.db().rpc().calls();
  for (size_t workers = 2; workers <= 8; ++workers) {
    if (workers > 2) system.db().AddReadWorker();  // no preload, no warmup
    bench::QpsResult r = bench::SystemQps(system, data, 10, 64, 200, false,
                                          0, 0, /*threads=*/4);
    uint64_t rpcs = system.db().rpc().calls();
    std::printf("%-26s %8zu %10.0f %12.2f %14llu\n", "", workers, r.qps,
                r.p99_latency_ms,
                static_cast<unsigned long long>(rpcs - rpc_base));
    rpc_base = rpcs;
    last = {r.qps, r.p99_latency_ms, rpcs};
  }
  return last;
}

}  // namespace
}  // namespace blendhouse

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Fig. 18: immediate query QPS in response to scaling");

  baselines::DatasetSpec spec = bench::Scaled(baselines::CohereSmall());
  baselines::BenchDataset data = baselines::MakeDataset(spec);

  RunScalingRun(/*serving=*/true, data);
  std::printf("\n");
  RunScalingRun(/*serving=*/false, data);
  std::printf(
      "\nReading: serving keeps newly added workers productive immediately"
      " (no\npost-scale latency spikes); the wait-for-load policy stalls"
      " first touches\non multi-megabyte remote index fetches after every"
      " step.\n");
  return 0;
}
