// Fig. 7: IVF search time as a function of segment rows N for different
// K_IVF settings — the motivation for size-aware auto indexing (§III-B).
//
// Expected shape (paper): no single fixed K_IVF wins across N; small K is
// best for small N, large K for large N, and the size-based rule tracks the
// lower envelope.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "tests/test_util.h"
#include "vecindex/auto_index.h"
#include "vecindex/ivf_index.h"

namespace blendhouse {
namespace {

double AvgSearchMicros(size_t n, size_t dim, size_t nlist,
                       const std::vector<float>& data) {
  vecindex::IvfOptions opts;
  opts.nlist = nlist;
  vecindex::IvfFlatIndex index(dim, vecindex::Metric::kL2, opts);
  std::vector<vecindex::IdType> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<vecindex::IdType>(i);
  if (!index.Train(data.data(), n).ok()) return -1;
  if (!index.AddWithIds(data.data(), ids.data(), n).ok()) return -1;

  vecindex::SearchParams params;
  params.k = 10;
  // Probe a fixed fraction of lists so accuracy is comparable across K.
  params.nprobe = static_cast<int>(std::max<size_t>(1, nlist / 8));
  const size_t kQueries = 50;
  common::Timer timer;
  for (size_t q = 0; q < kQueries; ++q) {
    auto r = index.SearchWithFilter(data.data() + (q * 37 % n) * dim, params);
    if (!r.ok()) return -1;
  }
  return static_cast<double>(timer.ElapsedMicros()) / kQueries;
}

}  // namespace
}  // namespace blendhouse

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Fig. 7: IVF search time vs N for different K_IVF");

  const size_t dim = 64;
  std::vector<size_t> sizes = {1000, 2000, 4000, 8000, 16000, 32000};
  std::printf("%8s %14s %14s %14s %16s %12s\n", "N", "K=16 (us)",
              "K=256 (us)", "K=1024 (us)", "K=auto (us)", "auto K");
  for (size_t n : sizes) {
    auto data = test::MakeClusteredVectors(n, dim, 32, 7);
    size_t auto_k = vecindex::AutoSelectIvfNlist(n);
    double fixed16 = AvgSearchMicros(n, dim, 16, data);
    double fixed256 = AvgSearchMicros(n, dim, 256, data);
    double fixed1024 =
        n >= 2048 ? AvgSearchMicros(n, dim, 1024, data) : -1;
    double auto_time = AvgSearchMicros(n, dim, auto_k, data);
    std::printf("%8zu %14.1f %14.1f %14.1f %16.1f %12zu\n", n, fixed16,
                fixed256, fixed1024, auto_time, auto_k);
  }
  std::printf(
      "\nReading: the best fixed K_IVF changes with N; the size-based rule"
      " (K=auto)\nstays near the per-N optimum, reproducing the paper's"
      " motivation for auto index.\n");
  return 0;
}
