// Post-filter iterator bench (DESIGN.md §14): resumable native batch
// iterators vs the generic restart-with-doubled-k wrapper, across filter
// selectivities from 0.1% to 50%.
//
// Protocol models the executor's kPostFilter loop at the vecindex layer:
// the predicate bitmap is applied OUTSIDE the index — the iterator streams
// candidates in distance order and the driver keeps pulling batches until k
// qualifying rows surface. At low selectivity that means digging far past
// the initial top-k. The generic wrapper re-runs the one-shot search with
// doubled k every round, re-paying all earlier distance computations; the
// native iterators retain their scan/probe state and only pay for new rows.
//
// IVFFLAT runs at nprobe=nlist so both sides rank the identical candidate
// universe and results can be asserted bit-identical; the speedup then
// isolates pure restart overhead (the lazy-probe advantage at nprobe<nlist
// comes on top and is covered by the unit parity suite).
//
// Emits BENCH_postfilter_iterator.json; with BH_BENCH_ASSERT=1 the gate
// requires bit-identical results everywhere and >=2x native QPS at <=1%
// selectivity on both FLAT and IVFFLAT.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/bitset.h"
#include "tests/test_util.h"
#include "vecindex/flat_index.h"
#include "vecindex/generic_iterator.h"
#include "vecindex/ivf_index.h"

namespace blendhouse {
namespace {

constexpr size_t kDim = 32;
constexpr size_t kK = 10;
constexpr size_t kBatch = 64;

/// Pulls batches until `k` rows passing `filter` are found or the iterator
/// is exhausted. Returns the qualifying rows in service order.
std::vector<vecindex::Neighbor> DrainUntilK(vecindex::SearchIterator* it,
                                            const common::Bitset& filter,
                                            size_t k) {
  std::vector<vecindex::Neighbor> found;
  for (;;) {
    std::vector<vecindex::Neighbor> batch = it->Next(kBatch);
    if (batch.empty()) return found;
    for (const vecindex::Neighbor& nb : batch) {
      if (!filter.Test(static_cast<size_t>(nb.id))) continue;
      found.push_back(nb);
      if (found.size() >= k) return found;
    }
  }
}

/// Evenly strided predicate bitmap with ~selectivity * n bits set.
common::Bitset StridedFilter(size_t n, double selectivity) {
  common::Bitset bits(n);
  size_t stride = std::max<size_t>(1, static_cast<size_t>(1.0 / selectivity));
  for (size_t i = 0; i < n; i += stride) bits.Set(i);
  return bits;
}

struct Point {
  double selectivity = 0;
  double native_qps = 0;
  double generic_qps = 0;
  bool parity = false;
  double speedup() const {
    return generic_qps > 0 ? native_qps / generic_qps : 0;
  }
};

/// One sweep point for one index: parity check first, then timed A/B.
Point RunPoint(const vecindex::VectorIndex& index, double selectivity,
               const std::vector<float>& queries, size_t num_queries,
               size_t k) {
  common::Bitset filter = StridedFilter(index.Size(), selectivity);
  vecindex::SearchParams params;
  params.k = static_cast<int>(k);
  params.nprobe = 1 << 20;  // IVF: rank every list (clamped to nlist)

  Point p;
  p.selectivity = selectivity;
  p.parity = true;
  for (size_t q = 0; q < num_queries; ++q) {
    const float* qv = queries.data() + q * kDim;
    auto native = index.MakeIterator(qv, params);
    if (!native.ok()) return p;
    std::vector<vecindex::Neighbor> a = DrainUntilK(native->get(), filter, k);
    vecindex::GenericSearchIterator generic(&index, qv, params);
    std::vector<vecindex::Neighbor> b = DrainUntilK(&generic, filter, k);
    if (a.size() != b.size()) p.parity = false;
    for (size_t i = 0; p.parity && i < a.size(); ++i)
      if (a[i].id != b[i].id || a[i].distance != b[i].distance)
        p.parity = false;
  }

  p.native_qps =
      bench::MeasureQps(
          [&](size_t i) {
            const float* qv = queries.data() + (i % num_queries) * kDim;
            auto it = index.MakeIterator(qv, params);
            if (!it.ok()) return false;
            return !DrainUntilK(it->get(), filter, k).empty();
          },
          num_queries * 4, /*threads=*/1)
          .qps;
  p.generic_qps =
      bench::MeasureQps(
          [&](size_t i) {
            const float* qv = queries.data() + (i % num_queries) * kDim;
            vecindex::GenericSearchIterator it(&index, qv, params);
            return !DrainUntilK(&it, filter, k).empty();
          },
          num_queries * 4, /*threads=*/1)
          .qps;
  return p;
}

void WriteJson(const std::vector<Point>& flat,
               const std::vector<Point>& ivf) {
  std::FILE* f = std::fopen("BENCH_postfilter_iterator.json", "w");
  if (f == nullptr) return;
  auto arr = [&](const char* key, const std::vector<Point>& pts,
                 double (*get)(const Point&)) {
    std::fprintf(f, "  \"%s\": [", key);
    for (size_t i = 0; i < pts.size(); ++i)
      std::fprintf(f, "%s%.4f", i == 0 ? "" : ", ", get(pts[i]));
    std::fprintf(f, "],\n");
  };
  std::fprintf(f, "{\n  \"bench\": \"postfilter_iterator\",\n");
  std::fprintf(f, "  \"scale\": %.3f,\n", bench::BenchScale());
  arr("selectivity", flat, [](const Point& p) { return p.selectivity; });
  arr("flat_native_qps", flat, [](const Point& p) { return p.native_qps; });
  arr("flat_generic_qps", flat, [](const Point& p) { return p.generic_qps; });
  arr("flat_speedup", flat, [](const Point& p) { return p.speedup(); });
  arr("ivf_native_qps", ivf, [](const Point& p) { return p.native_qps; });
  arr("ivf_generic_qps", ivf, [](const Point& p) { return p.generic_qps; });
  arr("ivf_speedup", ivf, [](const Point& p) { return p.speedup(); });
  bool parity = true;
  for (const Point& p : flat) parity = parity && p.parity;
  for (const Point& p : ivf) parity = parity && p.parity;
  std::fprintf(f, "  \"parity\": %s\n}\n", parity ? "true" : "false");
  std::fclose(f);
}

}  // namespace
}  // namespace blendhouse

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader(
      "Post-filter: resumable native iterators vs generic restart");

  const size_t n = std::max<size_t>(
      4000, static_cast<size_t>(20000 * bench::BenchScale()));
  const size_t num_queries = 16;
  auto data = test::MakeClusteredVectors(n, kDim, 12, 31);
  auto queries = test::MakeClusteredVectors(num_queries, kDim, 12, 77);
  auto ids = test::SequentialIds(n);

  vecindex::FlatIndex flat(kDim, vecindex::Metric::kL2);
  if (!flat.AddWithIds(data.data(), ids.data(), n).ok()) return 1;
  vecindex::IvfOptions ivf_opts;
  ivf_opts.nlist = 32;
  vecindex::IvfFlatIndex ivf(kDim, vecindex::Metric::kL2, ivf_opts);
  if (!ivf.Train(data.data(), n).ok()) return 1;
  if (!ivf.AddWithIds(data.data(), ids.data(), n).ok()) return 1;

  const std::vector<double> sweep = {0.001, 0.01, 0.1, 0.5};
  std::vector<Point> flat_pts, ivf_pts;
  std::printf("%-6s %-12s %14s %14s %10s %7s\n", "index", "selectivity",
              "native QPS", "generic QPS", "speedup", "parity");
  for (double s : sweep) {
    size_t qualifying = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(n) * s));
    size_t k = std::min(kK, qualifying);
    Point pf = RunPoint(flat, s, queries, num_queries, k);
    Point pi = RunPoint(ivf, s, queries, num_queries, k);
    flat_pts.push_back(pf);
    ivf_pts.push_back(pi);
    for (const auto* pr : {&pf, &pi})
      std::printf("%-6s %-12.3f %14.0f %14.0f %9.2fx %7s\n",
                  pr == &pf ? "FLAT" : "IVF", s, pr->native_qps,
                  pr->generic_qps, pr->speedup(),
                  pr->parity ? "ok" : "MISMATCH");
  }

  WriteJson(flat_pts, ivf_pts);
  std::printf(
      "\nReading: at low selectivity the driver digs far past top-k before"
      "\nfinding k qualifying rows. The generic wrapper re-runs the search"
      "\nwith doubled k each round (re-paying every earlier distance); the"
      "\nnative iterators keep their scan state and only pay for new rows,"
      "\nso the speedup grows as selectivity drops (curve written to"
      " BENCH_postfilter_iterator.json).\n");

  if (const char* gate = std::getenv("BH_BENCH_ASSERT");
      gate != nullptr && gate[0] == '1') {
    int failures = 0;
    auto expect = [&](bool ok, const std::string& what) {
      if (!ok) {
        std::fprintf(stderr, "BENCH ASSERT FAILED: %s\n", what.c_str());
        ++failures;
      }
    };
    for (size_t i = 0; i < sweep.size(); ++i) {
      expect(flat_pts[i].parity, "FLAT bit-identical results at s=" +
                                     std::to_string(sweep[i]));
      expect(ivf_pts[i].parity, "IVF bit-identical results at s=" +
                                    std::to_string(sweep[i]));
      if (sweep[i] <= 0.01) {
        expect(flat_pts[i].speedup() >= 2.0,
               "FLAT native >= 2x generic at s=" + std::to_string(sweep[i]));
        expect(ivf_pts[i].speedup() >= 2.0,
               "IVF native >= 2x generic at s=" + std::to_string(sweep[i]));
      }
    }
    if (failures > 0) return 1;
    std::printf("\nsmoke assertions passed (%zu sweep points x 2 indexes)\n",
                sweep.size());
  }
  return 0;
}
