// Core-scaling curve for the shard-per-core execution engine (DESIGN.md
// §12): read QPS of Fig. 12's mixed read/write workload as worker threads
// and in-flight client concurrency sweep 1 -> N, A/B'd between the sharded
// scheduler (per-thread run queues + work stealing + per-shard deadline
// heaps) and the legacy single shared queue (`SET scheduler_sharding = 0`).
//
// The host may have a single core, so the curve is driven by in-flight
// concurrency over SIMULATED I/O rather than raw CPU parallelism: a cache
// budget too small to retain any index forces every query through the disk
// tier, and the charged latency parks on the scheduler's delay queue
// without occupying a thread. More threads => more overlapped waits =>
// higher QPS, until queue contention flattens the curve — which is exactly
// the contention the sharded engine removes.
//
// Expected shape: both curves rise monotonically; the single-queue curve
// flattens earlier (every Submit/Wake crossing one mutex), the sharded
// curve tracks closer to linear. Emits BENCH_core_scaling.json for CI
// trend tracking; with BH_BENCH_ASSERT=1 the smoke assertions below gate
// the build.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "baselines/blendhouse_system.h"
#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/sharding.h"
#include "tests/test_util.h"

namespace blendhouse {
namespace {

double ReadCounter(const std::string& name) {
  for (const auto& s :
       common::metrics::MetricsRegistry::Instance().Snapshot())
    if (s.name == name) return s.value;
  return 0;
}

struct ScalePoint {
  size_t threads = 0;
  double qps = 0;
  double p99_ms = 0;
  double steals = 0;  // pool + scheduler steals during the measured run
};

ScalePoint ReadQpsAtConcurrency(bool sharded, size_t threads,
                                const baselines::BenchDataset& data) {
  baselines::BlendHouseSystemOptions opts = bench::DefaultBhOptions();
  opts.db.scheduler_sharding = sharded;
  opts.db.worker_threads = threads;
  // Fig. 12's mixed configuration: index builds share the read VW's pools.
  opts.db.separate_write_vw = false;
  opts.db.ingest.flush_threshold_rows = 256;
  opts.db.ingest.max_segment_rows = 256;
  opts.index_params["M"] = "8";
  opts.index_params["EF_CONSTRUCTION"] = "40";
  // Constant per-query simulated I/O (the fig11 cold-tier recipe): a memory
  // budget too small to retain any index plus forced local loads sends every
  // query through the disk tier, and the charge is deferred onto the delay
  // queue where concurrent queries overlap it. The tier's base latency is
  // raised well above this workload's ~1ms of per-query compute so the
  // curve stays I/O-bound across the whole sweep — otherwise a single
  // core's compute ceiling flattens it after the first doubling and the
  // monotonicity gate measures noise.
  opts.preload = false;
  opts.db.worker.cache.memory_bytes = 4096;
  opts.db.settings.acquire.force_local_load = true;
  opts.db.worker.cache.disk_cost = storage::StorageCostModel{6000, 2000.0,
                                                             true};

  baselines::BlendHouseSystem system(opts);
  if (!system.Load(data).ok()) return {};

  // Rate-limited background writer: one 256-row batch then sleep, so the
  // read VW keeps absorbing flush/build tasks without saturating the host.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    common::Rng rng(17);
    int64_t next_id = 10000000;
    while (!stop.load()) {
      std::vector<storage::Row> rows;
      for (size_t i = 0; i < 256; ++i) {
        std::vector<float> vec(data.dim);
        for (auto& v : vec) v = rng.Gaussian();
        storage::Row row;
        row.values = {next_id++, rng.UniformInt(0, 999999), int64_t{0}, 0.5,
                      std::string("w"), std::move(vec)};
        rows.push_back(std::move(row));
      }
      (void)system.db().Insert("bench", std::move(rows));
      std::this_thread::sleep_for(std::chrono::milliseconds(1000));
    }
  });

  // Warmup absorbs one-time costs (first brute-force scans, first flush's
  // index build) so the measured window sees the steady cold-tier cost.
  (void)bench::SystemQps(system, data, /*k=*/10, /*ef=*/64,
                         /*total_queries=*/8 * threads, false, 0, 0,
                         /*threads=*/threads);
  const double steals_before = ReadCounter("bh_threadpool_steals_total") +
                               ReadCounter("bh_scheduler_steals_total");
  bench::QpsResult r =
      bench::SystemQps(system, data, /*k=*/10, /*ef=*/64,
                       /*total_queries=*/80 * threads, false, 0, 0,
                       /*threads=*/threads);
  stop.store(true);
  writer.join();

  ScalePoint p;
  p.threads = threads;
  p.qps = r.qps;
  p.p99_ms = r.p99_latency_ms;
  p.steals = ReadCounter("bh_threadpool_steals_total") +
             ReadCounter("bh_scheduler_steals_total") - steals_before;
  return p;
}

void WriteJson(const std::vector<size_t>& sweep,
               const std::vector<ScalePoint>& sharded,
               const std::vector<ScalePoint>& single) {
  std::FILE* f = std::fopen("BENCH_core_scaling.json", "w");
  if (f == nullptr) return;
  auto arr = [&](const char* key, const std::vector<ScalePoint>& pts,
                 double ScalePoint::*field) {
    std::fprintf(f, "  \"%s\": [", key);
    for (size_t i = 0; i < pts.size(); ++i)
      std::fprintf(f, "%s%.2f", i == 0 ? "" : ", ", pts[i].*field);
    std::fprintf(f, "],\n");
  };
  std::fprintf(f, "{\n  \"bench\": \"core_scaling\",\n");
  std::fprintf(f, "  \"scale\": %.3f,\n", bench::BenchScale());
  std::fprintf(f, "  \"threads\": [");
  for (size_t i = 0; i < sweep.size(); ++i)
    std::fprintf(f, "%s%zu", i == 0 ? "" : ", ", sweep[i]);
  std::fprintf(f, "],\n");
  arr("sharded_qps", sharded, &ScalePoint::qps);
  arr("sharded_p99_ms", sharded, &ScalePoint::p99_ms);
  arr("sharded_steals", sharded, &ScalePoint::steals);
  arr("single_queue_qps", single, &ScalePoint::qps);
  arr("single_queue_p99_ms", single, &ScalePoint::p99_ms);
  std::fprintf(f, "  \"speedup_at_max\": %.3f\n", single.back().qps > 0
                      ? sharded.back().qps / single.back().qps
                      : 0.0);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace blendhouse

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader(
      "Core scaling: sharded vs single-queue scheduler, mixed workload");

  baselines::DatasetSpec spec = bench::Scaled(baselines::CohereSmall());
  spec.n = std::min<size_t>(spec.n, 4096);  // rebuilt once per sweep point
  baselines::BenchDataset data = baselines::MakeDataset(spec);

  // Sweep in-flight concurrency 1 -> N. The top point is at least 8 so the
  // overlap headroom is visible even on a single-core CI host.
  const size_t max_t =
      std::max<size_t>(8, std::thread::hardware_concurrency());
  std::vector<size_t> sweep;
  for (size_t t = 1; t <= max_t; t *= 2) sweep.push_back(t);
  if (sweep.back() != max_t) sweep.push_back(max_t);

  std::vector<ScalePoint> sharded, single;
  std::printf("%-10s %14s %14s %14s %10s %10s\n", "threads", "sharded QPS",
              "single-Q QPS", "sharded/1Q", "p99 (ms)", "steals");
  for (size_t t : sweep) {
    ScalePoint s = ReadQpsAtConcurrency(/*sharded=*/true, t, data);
    ScalePoint q = ReadQpsAtConcurrency(/*sharded=*/false, t, data);
    sharded.push_back(s);
    single.push_back(q);
    std::printf("%-10zu %14.0f %14.0f %13.2fx %10.2f %10.0f\n", t, s.qps,
                q.qps, q.qps > 0 ? s.qps / q.qps : 0.0, s.p99_ms, s.steals);
  }

  WriteJson(sweep, sharded, single);
  std::printf(
      "\nReading: QPS rises with in-flight concurrency because each query's"
      "\nsimulated disk-tier I/O parks on the delay queue instead of holding"
      "\na thread. The single shared queue funnels every submit and wake"
      "\nthrough one mutex and flattens first; per-shard queues with work"
      "\nstealing keep the curve climbing (curve written to"
      " BENCH_core_scaling.json).\n");
  bench::PrintRegistrySnapshot({"bh_threadpool_", "bh_scheduler_"});

  // Smoke gate (CI sets BH_BENCH_ASSERT=1). The hard guarantee is the
  // scaling shape: overlapped sim I/O must buy throughput, monotonically
  // within noise tolerance. The sharded-vs-single ratio is gated loosely —
  // on a single-core host both engines sit on the same I/O-overlap ceiling
  // and the ratio is noise around 1.0; the gate only catches a sharding
  // regression that makes it clearly WORSE than the queue it replaced.
  if (const char* gate = std::getenv("BH_BENCH_ASSERT");
      gate != nullptr && gate[0] == '1') {
    int failures = 0;
    auto expect = [&](bool ok, const char* what) {
      if (!ok) {
        std::fprintf(stderr, "BENCH ASSERT FAILED: %s\n", what);
        ++failures;
      }
    };
    expect(sharded.back().qps > sharded.front().qps,
           "sharded QPS(max threads) > QPS(1 thread)");
    expect(single.back().qps > single.front().qps,
           "single-queue QPS(max threads) > QPS(1 thread)");
    for (size_t i = 1; i < sharded.size(); ++i)
      expect(sharded[i].qps >= 0.8 * sharded[i - 1].qps,
             "sharded curve monotone within 20% tolerance");
    expect(sharded.back().qps >= 0.8 * single.back().qps,
           "sharded >= 0.8x single-queue at max concurrency");
    if (failures > 0) return 1;
    std::printf("\nsmoke assertions passed (%zu sweep points)\n",
                sweep.size());
  }
  return 0;
}
