// Fig. 17: contribution of the workload-aware optimizations to hybrid-query
// QPS: baseline -> +READ_Opt (adaptive column cache + granule sparse index)
// -> +READ_Opt+Query_Opt (plan cache + short-circuit processing).
//
// Expected shape (paper): READ_Opt gives the big step (+124% there) by
// killing repeated remote column reads; Query_Opt adds planning-overhead
// savings on top (+206% total).

#include <cstdio>

#include "baselines/blendhouse_system.h"
#include "bench/bench_util.h"

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader("Fig. 17: workload-aware optimization breakdown");

  baselines::DatasetSpec spec = bench::Scaled(baselines::CohereSmall());
  spec.n /= 2;
  baselines::BenchDataset data = baselines::MakeDataset(spec);

  // Realistic remote-storage latency: the read optimizations exist to avoid
  // exactly these fetches.
  baselines::BlendHouseSystemOptions opts = bench::DefaultBhOptions();
  opts.db.ingest.max_segment_rows = 1024;
  baselines::BlendHouseSystem system(opts);
  if (!system.Load(data).ok()) return 1;

  auto [lo, hi] = baselines::AttrRangeForSelectivity(0.5);

  struct Config {
    const char* name;
    bool column_cache, granules, plan_cache, short_circuit;
  };
  Config configs[] = {
      {"baseline", false, false, false, false},
      {"READ_Opt", true, true, false, false},
      {"READ_Opt+Query_Opt", true, true, true, true},
  };

  double baseline_qps = 0;
  std::printf("%-22s %10s %14s\n", "configuration", "QPS", "vs baseline");
  for (const Config& cfg : configs) {
    system.settings().use_column_cache = cfg.column_cache;
    system.settings().use_granule_pruning = cfg.granules;
    system.settings().use_plan_cache = cfg.plan_cache;
    system.settings().short_circuit = cfg.short_circuit;
    system.db().plan_cache().Invalidate();
    bench::QpsResult r =
        bench::SystemQps(system, data, 10, 64, 200, true, lo, hi);
    if (baseline_qps == 0) baseline_qps = r.qps;
    std::printf("%-22s %10.0f %+13.1f%%\n", cfg.name, r.qps,
                (r.qps / baseline_qps - 1.0) * 100);
  }
  return 0;
}
