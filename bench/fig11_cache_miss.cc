// Fig. 11: per-search latency of (a) local search on a hot in-memory index,
// (b) vector search serving via a peer worker's hot cache over RPC, and
// (c) the brute-force fallback used when no index is reachable.
//
// Expected shape (paper): brute force ~ an order of magnitude slower than
// local (14.5x in the paper); serving adds only the RPC round-trip (+16.6%
// in the paper) — the argument for serving over falling back.

#include <algorithm>
#include <cstdio>

#include "cluster/virtual_warehouse.h"
#include "common/histogram.h"
#include "common/timer.h"
#include "bench/bench_util.h"
#include "storage/lsm_engine.h"
#include "tests/test_util.h"

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader(
      "Fig. 11: latency of local search / vector search serving / brute "
      "force");

  const size_t kDim = 256;
  const size_t kRows = 16384;
  storage::ObjectStore store(storage::StorageCostModel::Remote());
  cluster::RpcFabric rpc;  // realistic RPC cost
  common::ThreadPool build_pool(2);

  storage::TableSchema schema;
  schema.table_name = "t";
  schema.columns = {{"id", storage::ColumnType::kInt64},
                    {"emb", storage::ColumnType::kFloatVector}};
  vecindex::IndexSpec spec;
  spec.type = "HNSW";
  spec.dim = kDim;
  schema.index_spec = spec;
  schema.vector_column = 1;

  storage::IngestOptions ingest;
  ingest.max_segment_rows = kRows;
  storage::LsmEngine engine(schema, &store, &build_pool, ingest);
  auto data = test::MakeClusteredVectors(kRows, kDim, 32, 11);
  {
    std::vector<storage::Row> rows;
    for (size_t i = 0; i < kRows; ++i) {
      storage::Row row;
      row.values = {static_cast<int64_t>(i),
                    std::vector<float>(data.begin() + i * kDim,
                                       data.begin() + (i + 1) * kDim)};
      rows.push_back(std::move(row));
    }
    if (!engine.Insert(std::move(rows)).ok() || !engine.Flush().ok()) return 1;
  }
  storage::SegmentMeta meta = engine.Snapshot().segments[0];

  cluster::WorkerOptions worker_options;  // realistic disk cost
  cluster::Worker hot("hot", &store, &rpc, worker_options);
  if (!hot.PreloadIndex(schema, meta).ok()) return 1;

  cluster::Worker cold_serving("cold_serving", &store, &rpc, worker_options);
  cold_serving.SetPeerResolver([&](const std::string&) { return &hot; });
  cluster::Worker cold_brute("cold_brute", &store, &rpc, worker_options);
  // Warm the raw-segment cache so brute force measures compute, not the
  // one-time remote fetch.
  (void)cold_brute.GetSegment(schema, meta.segment_id);

  auto measure = [&](cluster::Worker& worker,
                     const cluster::AcquireOptions& opts,
                     const char* expect) -> double {
    common::Histogram lat;
    const size_t kQueries = 200;
    for (size_t q = 0; q < kQueries; ++q) {
      const float* query = data.data() + (q * 41 % kRows) * kDim;
      common::Timer timer;
      auto acquired = worker.AcquireIndex(schema, meta, opts);
      if (!acquired.ok()) return -1;
      vecindex::SearchParams params;
      params.k = 10;
      params.ef_search = 128;
      auto hits = acquired->index->SearchWithFilter(query, params);
      if (!hits.ok()) return -1;
      lat.Add(timer.ElapsedMillis());
      if (q == 0 &&
          std::string(cluster::CacheOutcomeName(acquired->outcome)) != expect)
        std::fprintf(stderr, "warning: expected %s got %s\n", expect,
                     cluster::CacheOutcomeName(acquired->outcome));
    }
    return lat.Mean();
  };

  cluster::AcquireOptions local_opts;
  double local = measure(hot, local_opts, "memory_hit");

  cluster::AcquireOptions serving_opts;
  serving_opts.background_load_on_fallback = false;  // keep it cold
  double serving = measure(cold_serving, serving_opts, "remote_serving");

  cluster::AcquireOptions brute_opts;
  brute_opts.allow_remote_serving = false;
  brute_opts.background_load_on_fallback = false;
  double brute = measure(cold_brute, brute_opts, "brute_force");

  std::printf("%-24s %14s %12s\n", "mode", "latency (ms)", "vs local");
  std::printf("%-24s %14.3f %12s\n", "local search", local, "1.00x");
  std::printf("%-24s %14.3f %11.2fx (+%.1f%%)\n", "vector search serving",
              serving, serving / local, (serving / local - 1.0) * 100);
  std::printf("%-24s %14.3f %11.2fx\n", "brute force fallback", brute,
              brute / local);

  // ---- ExecStats breakdown through the executor ----------------------------
  // The same warm-vs-cold contrast driven end-to-end through the SQL
  // executor: the async task breakdown attributes each configuration's
  // latency. Warm caches are compute-bound; a memory budget too small to
  // retain any index forces every query through the disk tier, and the
  // simulated I/O charged by the delay queue dominates.
  {
    baselines::DatasetSpec spec = bench::Scaled(baselines::CohereSmall());
    spec.n = std::min<size_t>(spec.n, 4096);
    baselines::BenchDataset bdata = baselines::MakeDataset(spec);
    auto run = [&](bool warm) {
      baselines::BlendHouseSystemOptions opts = bench::DefaultBhOptions();
      opts.preload = warm;
      if (!warm) {
        // A memory budget too small to retain any index plus forced local
        // loads: every query re-reads the index through the disk tier.
        opts.db.worker.cache.memory_bytes = 4096;
        opts.db.settings.acquire.force_local_load = true;
      }
      baselines::BlendHouseSystem system(opts);
      baselines::BlendHouseSystem::AccumulatedExecStats stats;
      if (!system.Load(bdata).ok()) return stats;
      (void)system.DrainExecStats();  // drop load/preload accounting
      (void)bench::SystemQps(system, bdata, /*k=*/10, /*ef=*/64,
                             /*queries=*/60);
      return system.DrainExecStats();
    };
    auto print_row =
        [](const char* label,
           const baselines::BlendHouseSystem::AccumulatedExecStats& s) {
          double n = s.queries > 0 ? static_cast<double>(s.queries) : 1.0;
          std::printf("%-24s %10.0f %12.0f %12.0f %12.0f\n", label,
                      s.exec_micros / n, s.queue_wait_micros / n,
                      s.compute_micros / n, s.sim_io_micros / n);
        };
    std::printf(
        "\nExecStats breakdown (executor-driven, per-query averages, us):\n");
    std::printf("%-24s %10s %12s %12s %12s\n", "config", "exec", "queue wait",
                "compute", "sim I/O");
    print_row("warm cache", run(true));
    print_row("cache miss (cold)", run(false));
  }
  bench::PrintRegistrySnapshot({"bh_object_store_", "bh_index_cache_",
                                "bh_segment_cache_",
                                "bh_filter_bitmap_cache_"});
  return 0;
}
