// Fig. 11: per-search latency of (a) local search on a hot in-memory index,
// (b) vector search serving via a peer worker's hot cache over RPC, and
// (c) the brute-force fallback used when no index is reachable.
//
// Expected shape (paper): brute force ~ an order of magnitude slower than
// local (14.5x in the paper); serving adds only the RPC round-trip (+16.6%
// in the paper) — the argument for serving over falling back.

#include <cstdio>

#include "cluster/virtual_warehouse.h"
#include "common/histogram.h"
#include "common/timer.h"
#include "bench/bench_util.h"
#include "storage/lsm_engine.h"
#include "tests/test_util.h"

int main() {
  using namespace blendhouse;
  bench::QuietLogs();
  bench::PrintHeader(
      "Fig. 11: latency of local search / vector search serving / brute "
      "force");

  const size_t kDim = 256;
  const size_t kRows = 16384;
  storage::ObjectStore store(storage::StorageCostModel::Remote());
  cluster::RpcFabric rpc;  // realistic RPC cost
  common::ThreadPool build_pool(2);

  storage::TableSchema schema;
  schema.table_name = "t";
  schema.columns = {{"id", storage::ColumnType::kInt64},
                    {"emb", storage::ColumnType::kFloatVector}};
  vecindex::IndexSpec spec;
  spec.type = "HNSW";
  spec.dim = kDim;
  schema.index_spec = spec;
  schema.vector_column = 1;

  storage::IngestOptions ingest;
  ingest.max_segment_rows = kRows;
  storage::LsmEngine engine(schema, &store, &build_pool, ingest);
  auto data = test::MakeClusteredVectors(kRows, kDim, 32, 11);
  {
    std::vector<storage::Row> rows;
    for (size_t i = 0; i < kRows; ++i) {
      storage::Row row;
      row.values = {static_cast<int64_t>(i),
                    std::vector<float>(data.begin() + i * kDim,
                                       data.begin() + (i + 1) * kDim)};
      rows.push_back(std::move(row));
    }
    if (!engine.Insert(std::move(rows)).ok() || !engine.Flush().ok()) return 1;
  }
  storage::SegmentMeta meta = engine.Snapshot().segments[0];

  cluster::WorkerOptions worker_options;  // realistic disk cost
  cluster::Worker hot("hot", &store, &rpc, worker_options);
  if (!hot.PreloadIndex(schema, meta).ok()) return 1;

  cluster::Worker cold_serving("cold_serving", &store, &rpc, worker_options);
  cold_serving.SetPeerResolver([&](const std::string&) { return &hot; });
  cluster::Worker cold_brute("cold_brute", &store, &rpc, worker_options);
  // Warm the raw-segment cache so brute force measures compute, not the
  // one-time remote fetch.
  (void)cold_brute.GetSegment(schema, meta.segment_id);

  auto measure = [&](cluster::Worker& worker,
                     const cluster::AcquireOptions& opts,
                     const char* expect) -> double {
    common::Histogram lat;
    const size_t kQueries = 200;
    for (size_t q = 0; q < kQueries; ++q) {
      const float* query = data.data() + (q * 41 % kRows) * kDim;
      common::Timer timer;
      auto acquired = worker.AcquireIndex(schema, meta, opts);
      if (!acquired.ok()) return -1;
      vecindex::SearchParams params;
      params.k = 10;
      params.ef_search = 128;
      auto hits = acquired->index->SearchWithFilter(query, params);
      if (!hits.ok()) return -1;
      lat.Add(timer.ElapsedMillis());
      if (q == 0 &&
          std::string(cluster::CacheOutcomeName(acquired->outcome)) != expect)
        std::fprintf(stderr, "warning: expected %s got %s\n", expect,
                     cluster::CacheOutcomeName(acquired->outcome));
    }
    return lat.Mean();
  };

  cluster::AcquireOptions local_opts;
  double local = measure(hot, local_opts, "memory_hit");

  cluster::AcquireOptions serving_opts;
  serving_opts.background_load_on_fallback = false;  // keep it cold
  double serving = measure(cold_serving, serving_opts, "remote_serving");

  cluster::AcquireOptions brute_opts;
  brute_opts.allow_remote_serving = false;
  brute_opts.background_load_on_fallback = false;
  double brute = measure(cold_brute, brute_opts, "brute_force");

  std::printf("%-24s %14s %12s\n", "mode", "latency (ms)", "vs local");
  std::printf("%-24s %14.3f %12s\n", "local search", local, "1.00x");
  std::printf("%-24s %14.3f %11.2fx (+%.1f%%)\n", "vector search serving",
              serving, serving / local, (serving / local - 1.0) * 100);
  std::printf("%-24s %14.3f %11.2fx\n", "brute force fallback", brute,
              brute / local);
  return 0;
}
