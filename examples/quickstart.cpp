// Quickstart: create a table with a vector index, ingest a few rows through
// SQL, and run a hybrid query — the paper's Example 1 in miniature.
//
//   ./examples/quickstart

#include <cstdio>
#include <string>

#include "core/blendhouse.h"

using blendhouse::core::BlendHouse;
using blendhouse::core::BlendHouseOptions;

int main() {
  // All latency simulation off: this example is about the API.
  BlendHouse db(BlendHouseOptions::Fast());

  // 1. DDL: scalar columns + embedding + an HNSW index on it.
  auto created = db.ExecuteSql(
      "CREATE TABLE images ("
      "  id Int64,"
      "  label String,"
      "  embedding Array(Float32),"
      "  INDEX ann_idx embedding TYPE HNSW('DIM=4', 'M=16')"
      ") PARTITION BY (label);");
  if (!created.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }

  // 2. Ingest through SQL. (Bulk loads would use BlendHouse::Insert.)
  auto inserted = db.ExecuteSql(
      "INSERT INTO images VALUES"
      " (1, 'cat',    [0.9, 0.1, 0.0, 0.0]),"
      " (2, 'cat',    [0.8, 0.2, 0.1, 0.0]),"
      " (3, 'dog',    [0.1, 0.9, 0.0, 0.1]),"
      " (4, 'dog',    [0.0, 0.8, 0.2, 0.0]),"
      " (5, 'sunset', [0.0, 0.0, 0.9, 0.4]),"
      " (6, 'sunset', [0.1, 0.0, 0.8, 0.5]);");
  if (!inserted.ok()) return 1;
  // Commit buffered rows (flushes the memtable into an indexed segment).
  if (!db.Flush("images").ok()) return 1;

  // 3. Hybrid query: nearest cats to a query embedding.
  auto result = db.Query(
      "SELECT id, label, d FROM images"
      " WHERE label = 'cat'"
      " ORDER BY L2Distance(embedding, [1.0, 0.0, 0.0, 0.0]) AS d"
      " LIMIT 3;");
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("%-6s %-8s %s\n", "id", "label", "distance");
  for (const auto& row : result->rows) {
    std::printf("%-6lld %-8s %.4f\n",
                static_cast<long long>(std::get<int64_t>(row.values[0])),
                std::get<std::string>(row.values[1]).c_str(),
                std::get<double>(row.values[2]));
  }

  // 4. Peek at the optimizer's plan for the same query.
  auto explain = db.Explain(
      "SELECT id FROM images WHERE label = 'cat'"
      " ORDER BY L2Distance(embedding, [1.0, 0.0, 0.0, 0.0]) LIMIT 3;");
  if (explain.ok()) std::printf("\nEXPLAIN:\n%s", explain->c_str());
  return 0;
}
