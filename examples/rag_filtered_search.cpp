// RAG retrieval layer: document chunks with metadata, retrieved by semantic
// similarity under freshness/source predicates — the hybrid-query pattern
// the paper's introduction motivates. Demonstrates the three physical
// strategies on the same query shape and the distance-range pushdown.
//
//   ./examples/rag_filtered_search

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/logging.h"
#include "core/blendhouse.h"

namespace {

constexpr size_t kDim = 24;

std::string VecLiteral(const std::vector<float>& v) {
  std::string s = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(v[i]);
  }
  return s + "]";
}

}  // namespace

int main() {
  using namespace blendhouse;
  common::SetLogLevel(common::LogLevel::kWarn);

  core::BlendHouse db(core::BlendHouseOptions::Fast());
  auto created = db.ExecuteSql(
      "CREATE TABLE chunks ("
      "  id Int64,"
      "  source String,"
      "  published Int64,"  // days since epoch
      "  embedding Array(Float32),"
      "  INDEX ann embedding TYPE HNSW('DIM=24')"
      ");");
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }

  // Corpus: chunks from three sources over a year, embeddings clustered by
  // topic.
  const char* kSources[] = {"wiki", "docs", "blog"};
  common::Rng rng(11);
  std::vector<float> topics(6 * kDim);
  for (auto& t : topics) t = rng.Gaussian();
  std::vector<storage::Row> rows;
  for (int64_t i = 0; i < 4000; ++i) {
    size_t topic = static_cast<size_t>(rng.UniformInt(0, 5));
    std::vector<float> emb(kDim);
    for (size_t d = 0; d < kDim; ++d)
      emb[d] = topics[topic * kDim + d] + rng.Gaussian(0, 0.3f);
    storage::Row row;
    row.values = {i, std::string(kSources[i % 3]),
                  rng.UniformInt(19000, 19365), std::move(emb)};
    rows.push_back(std::move(row));
  }
  if (!db.Insert("chunks", std::move(rows)).ok() || !db.Flush("chunks").ok())
    return 1;

  // The "user question" embedding: near topic 2.
  std::vector<float> question(topics.begin() + 2 * kDim,
                              topics.begin() + 3 * kDim);

  // Retrieval query: recent documentation chunks only.
  std::string sql =
      "SELECT id, source, published, d FROM chunks"
      " WHERE source = 'docs' AND published >= 19300"
      " ORDER BY L2Distance(embedding, " + VecLiteral(question) + ") AS d"
      " LIMIT 4;";

  auto result = db.Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("retrieved context chunks:\n%-8s %-8s %-11s %s\n", "id",
              "source", "published", "distance");
  for (const auto& row : result->rows)
    std::printf("%-8lld %-8s %-11lld %.4f\n",
                static_cast<long long>(std::get<int64_t>(row.values[0])),
                std::get<std::string>(row.values[1]).c_str(),
                static_cast<long long>(std::get<int64_t>(row.values[2])),
                std::get<double>(row.values[3]));

  // The same query under each physical strategy returns consistent chunks:
  // the CBO is free to pick whichever is cheapest.
  std::printf("\nstrategy comparison (same query):\n");
  for (sql::ExecStrategy strategy :
       {sql::ExecStrategy::kBruteForce, sql::ExecStrategy::kPreFilter,
        sql::ExecStrategy::kPostFilter}) {
    sql::QuerySettings settings = db.options().settings;
    settings.forced_strategy = strategy;
    settings.use_plan_cache = false;
    auto r = db.QueryWithSettings(sql, settings);
    if (!r.ok()) return 1;
    std::printf("  %-12s -> %zu rows, top id %lld, %.2f ms\n",
                sql::ExecStrategyName(strategy), r->rows.size(),
                static_cast<long long>(std::get<int64_t>(r->rows[0].values[0])),
                r->stats.exec_micros / 1000.0);
  }

  // Distance-range retrieval: only chunks semantically close enough to be
  // useful context (the pushed-down `d < r` constraint).
  auto ranged = db.Query(
      "SELECT id, d FROM chunks WHERE d < 3.0"
      " ORDER BY L2Distance(embedding, " + VecLiteral(question) + ") AS d"
      " LIMIT 50;");
  if (!ranged.ok()) return 1;
  std::printf("\nwithin semantic radius 3.0: %zu chunks\n",
              ranged->rows.size());
  return 0;
}
