// Elastic scaling walkthrough: a read VW serving vector search scales from
// two to five workers while queries keep flowing. New workers answer their
// reassigned segments immediately via vector search serving (paper Fig. 4),
// and the multi-probe consistent-hash ring moves only a minimal fraction of
// segments (paper Fig. 3).
//
//   ./examples/elastic_scaling

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "cluster/scheduler.h"
#include "common/rng.h"
#include "common/logging.h"
#include "core/blendhouse.h"

namespace {
constexpr size_t kDim = 16;

std::string VecLiteral(const float* v) {
  std::string s = "[";
  for (size_t d = 0; d < kDim; ++d) {
    if (d) s += ",";
    s += std::to_string(v[d]);
  }
  return s + "]";
}
}  // namespace

int main() {
  using namespace blendhouse;
  common::SetLogLevel(common::LogLevel::kWarn);

  core::BlendHouseOptions options;  // realistic latency models
  options.read_workers = 2;
  options.ingest.max_segment_rows = 512;  // many segments to spread around
  core::BlendHouse db(options);

  auto created = db.ExecuteSql(
      "CREATE TABLE vectors (id Int64, emb Array(Float32),"
      " INDEX ann emb TYPE HNSW('DIM=16'));");
  if (!created.ok()) return 1;

  common::Rng rng(3);
  std::vector<storage::Row> rows;
  for (int64_t i = 0; i < 8000; ++i) {
    std::vector<float> emb(kDim);
    for (auto& v : emb) v = rng.Gaussian();
    storage::Row row;
    row.values = {i, std::move(emb)};
    rows.push_back(std::move(row));
  }
  if (!db.Insert("vectors", std::move(rows)).ok() ||
      !db.Flush("vectors").ok())
    return 1;
  if (!db.PreloadTable("vectors").ok()) return 1;

  auto snapshot = db.engine("vectors")->Snapshot();
  auto placement = [&]() {
    std::map<std::string, std::string> out;
    for (const auto& meta : snapshot.segments)
      out[meta.segment_id] =
          db.read_vw().OwnerIdOf(cluster::Scheduler::PlacementKey(
              "vectors", meta));
    return out;
  };

  std::vector<float> query(kDim, 0.25f);
  auto run_query = [&]() {
    auto r = db.Query("SELECT id, d FROM vectors ORDER BY L2Distance(emb, " +
                      VecLiteral(query.data()) + ") AS d LIMIT 5;");
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   r.status().ToString().c_str());
      return false;
    }
    return true;
  };

  std::printf("segments: %zu, workers: %zu\n", snapshot.segments.size(),
              db.read_vw().num_workers());
  auto before = placement();

  for (int step = 0; step < 3; ++step) {
    cluster::Worker* fresh = db.AddReadWorker();
    auto after = placement();
    size_t moved = 0;
    for (const auto& [segment, owner] : before)
      if (after.at(segment) != owner) ++moved;
    // Queries keep working the instant the topology changes; moved segments
    // are served via the previous owners' caches while background loads
    // warm the new worker.
    uint64_t rpc_before = db.rpc().calls();
    bool ok = run_query() && run_query() && run_query();
    std::printf(
        "added %-10s -> %zu workers, %zu/%zu segments moved, queries %s"
        " (%llu serving RPCs)\n",
        fresh->id().c_str(), db.read_vw().num_workers(), moved,
        before.size(), ok ? "OK" : "FAILED",
        static_cast<unsigned long long>(db.rpc().calls() - rpc_before));
    if (!ok) return 1;
    before = std::move(after);
  }

  // Scale back down: the removed worker's segments fall to survivors, and
  // query-level retry plus shared storage keep results correct.
  std::string victim = db.read_vw().workers().front()->id();
  if (!db.RemoveReadWorker(victim).ok()) return 1;
  std::printf("removed %s -> %zu workers, queries %s\n", victim.c_str(),
              db.read_vw().num_workers(), run_query() ? "OK" : "FAILED");
  return 0;
}
