// Image-search service: the production workload of the paper's Table VII in
// miniature. A catalog of image embeddings with scalar metadata is ingested
// with scalar + semantic partitioning, then filtered top-k searches run with
// the cost-based optimizer choosing the execution strategy per query.
//
//   ./examples/image_search

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/logging.h"
#include "core/blendhouse.h"

namespace {

constexpr size_t kDim = 32;
constexpr size_t kImages = 6000;

std::string VecLiteral(const std::vector<float>& v) {
  std::string s = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(v[i]);
  }
  return s + "]";
}

}  // namespace

int main() {
  using namespace blendhouse;
  common::SetLogLevel(common::LogLevel::kWarn);

  core::BlendHouseOptions options = core::BlendHouseOptions::Fast();
  options.ingest.max_segment_rows = 1024;
  core::BlendHouse db(options);

  // Scalar partitioning by category plus semantic clustering of embeddings:
  // both pruning dimensions from the paper's Example 1.
  auto created = db.ExecuteSql(
      "CREATE TABLE gallery ("
      "  id Int64,"
      "  category String,"
      "  width Int64,"
      "  quality Float64,"
      "  embedding Array(Float32),"
      "  INDEX ann embedding TYPE HNSW('DIM=32', 'M=12')"
      ") PARTITION BY (category)"
      "  CLUSTER BY embedding INTO 8 BUCKETS;");
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }

  // Synthesize a catalog: 4 categories, clustered embeddings.
  const char* kCategories[] = {"animal", "landscape", "portrait", "food"};
  common::Rng rng(7);
  std::vector<float> centers(8 * kDim);
  for (auto& c : centers) c = rng.Gaussian();
  std::vector<storage::Row> rows;
  rows.reserve(kImages);
  for (size_t i = 0; i < kImages; ++i) {
    size_t c = static_cast<size_t>(rng.UniformInt(0, 7));
    std::vector<float> emb(kDim);
    for (size_t d = 0; d < kDim; ++d)
      emb[d] = centers[c * kDim + d] + rng.Gaussian(0, 0.2f);
    storage::Row row;
    row.values = {static_cast<int64_t>(i),
                  std::string(kCategories[i % 4]),
                  rng.UniformInt(320, 4096),
                  rng.Uniform(),
                  std::move(emb)};
    rows.push_back(std::move(row));
  }
  if (!db.Insert("gallery", std::move(rows)).ok() ||
      !db.Flush("gallery").ok())
    return 1;
  if (!db.PreloadTable("gallery").ok()) return 1;

  // Query: "animal images, at least 1024px wide, good quality, most similar
  // to this example image" — multi-predicate filtered vector search.
  std::vector<float> query(centers.begin(), centers.begin() + kDim);
  std::string sql =
      "SELECT id, category, width, d FROM gallery"
      " WHERE category = 'animal' AND width >= 1024 AND quality > 0.5"
      " ORDER BY L2Distance(embedding, " + VecLiteral(query) + ") AS d"
      " LIMIT 5;";

  auto result = db.Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("top matches:\n%-8s %-12s %-8s %s\n", "id", "category", "width",
              "distance");
  for (const auto& row : result->rows)
    std::printf("%-8lld %-12s %-8lld %.4f\n",
                static_cast<long long>(std::get<int64_t>(row.values[0])),
                std::get<std::string>(row.values[1]).c_str(),
                static_cast<long long>(std::get<int64_t>(row.values[2])),
                std::get<double>(row.values[3]));

  const auto& stats = result->stats;
  std::printf(
      "\nexecution: strategy=%s, %zu/%zu segments scanned after pruning"
      " (scalar kept %zu, semantic kept %zu)\n",
      sql::ExecStrategyName(stats.strategy), stats.segments_scanned,
      stats.segments_total, stats.segments_after_scalar_prune,
      stats.segments_after_semantic_prune);

  // Realtime update: reclassify one image and re-query (Fig. 6 mechanism:
  // new version + delete bitmap, no index rebuild).
  long long top_id =
      static_cast<long long>(std::get<int64_t>(result->rows[0].values[0]));
  auto updated = db.ExecuteSql("UPDATE gallery SET category = 'archived'"
                               " WHERE id = " + std::to_string(top_id) + ";");
  if (!updated.ok()) return 1;
  auto requery = db.Query(sql);
  if (!requery.ok()) return 1;
  long long new_top =
      static_cast<long long>(std::get<int64_t>(requery->rows[0].values[0]));
  std::printf("\nafter archiving image %lld, the new top match is %lld\n",
              top_id, new_top);
  return new_top == top_id ? 1 : 0;
}
