#!/usr/bin/env python3
"""BlendHouse source linter.

Runs as a ctest (see tests/CMakeLists.txt) over everything under src/ and
enforces four concurrency/hygiene rules:

  raw-mutex    Raw standard-library locking primitives (std::mutex,
               std::condition_variable, std::lock_guard, ...) are banned
               outside src/common/mutex.h. All locking goes through the
               annotated common::Mutex / common::MutexLock / common::CondVar
               wrappers so Clang's thread-safety analysis can see it.
  naked-new    `new` / `delete` expressions are banned; use std::make_unique
               / std::make_shared / containers.
  include-cycle  The `#include "..."` graph under src/ must be acyclic.
  pragma-once  Every header under src/ must start with #pragma once.
  sleep-for    std::this_thread::sleep_for / sleep_until are banned outside
               src/baselines/ (the deliberately-blocking comparison systems)
               and src/common/task_scheduler.cc (the delay queue). Simulated
               latency must go through common::ChargeSimLatency or
               TaskScheduler::ScheduleAfter so it never parks a pool thread.
  simd-intrinsics  Raw SIMD intrinsics (immintrin.h / arm_neon.h includes,
               _mm*/__m*/v*q_f32 tokens) are banned outside
               src/vecindex/kernels/. Everything else calls the dispatched
               kernel layer so per-TU -march flags stay contained and the
               scalar fallback stays honest.
  adhoc-timer  common::Timer (common/timer.h) is banned outside src/common/
               and src/baselines/. Ad-hoc timer-fed stat fields fragment
               telemetry: production timing flows through the metrics layer
               (common::metrics::ScopedTimer into a registry histogram) or
               trace spans, so every measurement is exported and
               reconcilable. Algorithms that consume elapsed time as an
               input (e.g. auto-index trials) annotate the use.
  metric-name  Metric names registered via MetricsRegistry::Get{Counter,
               Gauge,Histogram} with a string literal must match
               `bh_[a-z0-9_]+` (DESIGN.md §10 naming convention): one
               namespace, lowercase snake case, so the Prometheus export
               needs no sanitization and dashboards can glob bh_*.
  this-capture  Lambdas passed to Future::Then / ThreadPool::Submit /
               TaskScheduler::Schedule(/After) inside src/cluster/ must not
               capture raw `this`: the continuation can outlive the object
               during a scale-down (the use-after-free shape PR5's
               generation-stamped leases exist to prevent). Capture a
               shared_ptr/weak_ptr or stamped handle instead; audited sites
               where lifetime is structurally guaranteed (e.g. a pool owned
               by *this and destroyed first) carry lint:allow(this-capture)
               with a justification.

Suppress a finding by putting  lint:allow(<rule>)  in a comment on the same
line. Usage: tools/lint.py [repo-root]
"""

import os
import re
import sys

RAW_MUTEX_TOKENS = (
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::recursive_timed_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::condition_variable",
    "std::condition_variable_any",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
)

# The annotated wrapper is the one place allowed to touch the raw primitives.
RAW_MUTEX_EXEMPT = {os.path.join("src", "common", "mutex.h")}

SLEEP_TOKENS = ("sleep_for", "sleep_until")

# Baseline comparison systems block on purpose (they model synchronous
# engines); the delay queue is the one sanctioned timed wait in BlendHouse.
SLEEP_EXEMPT_PREFIXES = (os.path.join("src", "baselines") + os.sep,)
SLEEP_EXEMPT_FILES = {os.path.join("src", "common", "task_scheduler.cc")}

# Intrinsics headers and vendor-prefixed intrinsic tokens; the kernel layer
# is the single translation-unit family allowed to touch them.
SIMD_INCLUDE_TOKENS = (
    "immintrin.h",
    "x86intrin.h",
    "emmintrin.h",
    "xmmintrin.h",
    "smmintrin.h",
    "avxintrin.h",
    "arm_neon.h",
)
SIMD_INTRINSIC_RE = re.compile(
    r"\b(_mm_|_mm256_|_mm512_|__m128|__m256|__m512|__mmask|vld1q_|vst1q_|"
    r"vfmaq_|vaddvq_|vdupq_)")
SIMD_EXEMPT_PREFIXES = (
    os.path.join("src", "vecindex", "kernels") + os.sep,)

# The metrics layer wraps Timer (ScopedTimer); baselines model synchronous
# engines whose internal timing is not part of BlendHouse's telemetry.
ADHOC_TIMER_TOKENS = ("common::Timer", "common/timer.h")
ADHOC_TIMER_EXEMPT_PREFIXES = (
    os.path.join("src", "common") + os.sep,
    os.path.join("src", "baselines") + os.sep,
)

ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+)\)")

# A continuation-shaped call (Then/Submit/Schedule/ScheduleAfter) whose
# lambda capture list contains a bare `this`. The window between the call
# and `[` spans small leading args (scheduler pointer, delay).
THIS_CAPTURE_RE = re.compile(
    r"\b(?:Then|Submit|Schedule|ScheduleAfter)\s*\(([^\[\]();]{0,80})"
    r"\[([^\]]*)\]", re.S)
THIS_CAPTURE_PREFIXES = (os.path.join("src", "cluster") + os.sep,)


def strip_comments_and_strings(text):
    """Replaces comment/string/char-literal contents with spaces, keeping
    line structure intact so reported line numbers stay correct."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def collect_sources(root):
    files = []
    src = os.path.join(root, "src")
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if name.endswith((".h", ".cc")):
                files.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(files)


def allows_for(raw_lines):
    """Maps 1-based line number -> set of suppressed rule names."""
    allows = {}
    for lineno, line in enumerate(raw_lines, start=1):
        for m in ALLOW_RE.finditer(line):
            allows.setdefault(lineno, set()).add(m.group(1))
    return allows


DELETE_RE = re.compile(r"\bdelete\b")
NEW_RE = re.compile(r"\bnew\b")


def check_tokens(path, raw_lines, code_lines, findings):
    allows = allows_for(raw_lines)

    def allowed(lineno, rule):
        return rule in allows.get(lineno, set())

    exempt_mutex = path in RAW_MUTEX_EXEMPT
    exempt_sleep = (path in SLEEP_EXEMPT_FILES
                    or path.startswith(SLEEP_EXEMPT_PREFIXES))
    exempt_simd = path.startswith(SIMD_EXEMPT_PREFIXES)
    exempt_timer = path.startswith(ADHOC_TIMER_EXEMPT_PREFIXES)
    for lineno, line in enumerate(code_lines, start=1):
        if not exempt_mutex:
            for token in RAW_MUTEX_TOKENS:
                if token in line and not allowed(lineno, "raw-mutex"):
                    findings.append(
                        (path, lineno, "raw-mutex",
                         f"{token} outside src/common/mutex.h; use the "
                         "annotated common::Mutex wrapper"))
        if not exempt_sleep:
            for token in SLEEP_TOKENS:
                if token in line and not allowed(lineno, "sleep-for"):
                    findings.append(
                        (path, lineno, "sleep-for",
                         f"{token} outside src/baselines/; charge simulated "
                         "latency via common::ChargeSimLatency or "
                         "TaskScheduler::ScheduleAfter"))
        if not exempt_simd and not allowed(lineno, "simd-intrinsics"):
            raw = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
            for token in SIMD_INCLUDE_TOKENS:
                if "include" in raw and token in raw:
                    findings.append(
                        (path, lineno, "simd-intrinsics",
                         f"#include <{token}> outside src/vecindex/kernels/; "
                         "call the dispatched kernel layer instead"))
            m = SIMD_INTRINSIC_RE.search(line)
            if m:
                findings.append(
                    (path, lineno, "simd-intrinsics",
                     f"raw intrinsic `{m.group(1)}...` outside "
                     "src/vecindex/kernels/; call the dispatched kernel "
                     "layer instead"))
        if not exempt_timer and not allowed(lineno, "adhoc-timer"):
            raw = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
            for token in ADHOC_TIMER_TOKENS:
                # The include token lives inside a string literal, so match
                # against the raw line; the type token against code.
                hay = raw if token.endswith(".h") else line
                if token in hay:
                    findings.append(
                        (path, lineno, "adhoc-timer",
                         f"{token} outside src/common/; time through "
                         "common::metrics::ScopedTimer (registry histogram) "
                         "or a trace span instead"))
        for m in NEW_RE.finditer(line):
            if allowed(lineno, "naked-new"):
                continue
            findings.append(
                (path, lineno, "naked-new",
                 "naked `new`; use std::make_unique / std::make_shared"))
        for m in DELETE_RE.finditer(line):
            before = line[:m.start()].rstrip()
            if before.endswith("="):  # deleted special member, not a delete-expr
                continue
            if allowed(lineno, "naked-new"):
                continue
            findings.append(
                (path, lineno, "naked-new",
                 "naked `delete`; owning pointers must be smart pointers"))


# Bare `this` in a capture list; `*this` (capture by copy) is safe.
RAW_THIS_RE = re.compile(r"(?<![\w*])this\b")


def check_this_capture(path, raw_lines, code_text, findings):
    if not path.startswith(THIS_CAPTURE_PREFIXES):
        return
    allows = allows_for(raw_lines)
    for m in THIS_CAPTURE_RE.finditer(code_text):
        captures = m.group(2)
        if not RAW_THIS_RE.search(captures):
            continue
        # Line of the `[` that opens the capture list.
        lineno = code_text.count("\n", 0, m.start() + len(m.group(0)) -
                                 len(captures) - 2) + 1
        if "this-capture" in allows.get(lineno, set()):
            continue
        findings.append(
            (path, lineno, "this-capture",
             "continuation captures raw `this`; the task can outlive the "
             "object during scale-down — capture a shared_ptr/weak_ptr or "
             "generation-stamped handle, or lint:allow(this-capture) with "
             "a lifetime justification"))


# A registry registration with a literal name; the window between the call
# and the string spans a line break plus indentation. Dynamic names are not
# checked (the exporter sanitizes as a backstop).
METRIC_NAME_RE = re.compile(
    r"\bGet(?:Counter|Gauge|Histogram)\s*\(\s*\"([^\"]*)\"", re.S)
METRIC_NAME_OK_RE = re.compile(r"bh_[a-z0-9_]+\Z")


def check_metric_names(path, raw_lines, raw_text, findings):
    allows = allows_for(raw_lines)
    for m in METRIC_NAME_RE.finditer(raw_text):
        name = m.group(1)
        if METRIC_NAME_OK_RE.fullmatch(name):
            continue
        lineno = raw_text.count("\n", 0, m.start()) + 1
        if "metric-name" in allows.get(lineno, set()):
            continue
        findings.append(
            (path, lineno, "metric-name",
             f'registry metric "{name}" must match bh_[a-z0-9_]+ '
             "(lowercase snake case in the bh_ namespace)"))


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def check_pragma_once(path, raw_lines, findings):
    if not path.endswith(".h"):
        return
    if not any(line.strip() == "#pragma once" for line in raw_lines):
        findings.append((path, 1, "pragma-once", "header is missing #pragma once"))


def build_include_graph(root, files):
    known = set(files)
    graph = {}
    for path in files:
        edges = []
        with open(os.path.join(root, path), encoding="utf-8") as f:
            for line in f:
                m = INCLUDE_RE.match(line)
                if m:
                    target = os.path.join("src", m.group(1))
                    if target in known:
                        edges.append(target)
        graph[path] = edges
    return graph


def find_include_cycle(graph):
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    stack = []

    def dfs(node):
        color[node] = GREY
        stack.append(node)
        for dep in graph[node]:
            if color[dep] == GREY:
                return stack[stack.index(dep):] + [dep]
            if color[dep] == WHITE:
                cycle = dfs(dep)
                if cycle:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(graph):
        if color[node] == WHITE:
            cycle = dfs(node)
            if cycle:
                return cycle
    return None


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    files = collect_sources(root)
    if not files:
        print(f"lint: no sources found under {os.path.join(root, 'src')}",
              file=sys.stderr)
        return 1

    findings = []
    for path in files:
        with open(os.path.join(root, path), encoding="utf-8") as f:
            text = f.read()
        raw_lines = text.splitlines()
        code_text = strip_comments_and_strings(text)
        code_lines = code_text.splitlines()
        check_tokens(path, raw_lines, code_lines, findings)
        check_this_capture(path, raw_lines, code_text, findings)
        check_metric_names(path, raw_lines, text, findings)
        check_pragma_once(path, raw_lines, findings)

    cycle = find_include_cycle(build_include_graph(root, files))
    if cycle:
        findings.append((cycle[0], 1, "include-cycle",
                         "include cycle: " + " -> ".join(cycle)))

    for path, lineno, rule, message in findings:
        print(f"{path}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"lint: {len(findings)} finding(s) in {len(files)} files",
              file=sys.stderr)
        return 1
    print(f"lint: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
