#!/usr/bin/env python3
"""BlendHouse whole-program lock-order analyzer.

Walks src/, parses the lock-rank table (src/common/lock_rank.h), the ranked
common::Mutex declarations, the CAPABILITY/REQUIRES/GUARDED_BY annotations,
and the call edges between functions, and builds the global lock-acquisition
graph: which mutexes (by rank label) can be held when each other mutex is
acquired, and which functions invoke externally supplied callbacks
(MoveOnlyFn, std::function, Future continuations via Promise::SetValue /
Future::Then) while holding a lock — the shape of the PR5 RemoveWorker
deadlock.

Reported as errors (exit 1):

  unranked-mutex       a common::Mutex in src/ constructed without a
                       lockrank:: constant (unranked mutexes skip checking).
  unknown-rank         a rank label that is not in lock_rank.h.
  ambiguous-mutex      a lock site whose mutex expression resolves to more
                       than one rank label.
  order-violation      evidence that a mutex is acquired while one of equal
                       or lower rank is held (acquisition must be strictly
                       decreasing in rank).
  shard-nesting        a shard-family mutex (rank label ending in "Shard":
                       per-core run-queue / deadline-heap shards) acquired
                       while a sibling of the same family is held. Sibling
                       shards deliberately share one rank; the work-stealing
                       protocol requires holding at most one shard lock at a
                       time (release your own before locking a victim's).
  cycle                a cycle in the label-level acquisition graph.
  callback-under-lock  an externally supplied callable invoked — directly or
                       through a call chain (e.g. Promise::SetValue firing an
                       inline continuation) — inside a held-lock region.

Suppress one finding with a  lockgraph:allow(<rule>)  comment on the line.
The analysis is deliberately conservative about resolution: an edge is only
recorded when the callee resolves unambiguously (typed receiver, same-class
method, unique global name, or all candidates agreeing), so every report is
actionable. The dynamic rank checker in common/lock_rank.h backstops what
static analysis cannot see (implicit member construction, virtual dispatch).

Usage: tools/lockgraph.py [repo-root] [--dot FILE] [--self-test] [-v]
"""

import argparse
import os
import re
import sys
import tempfile

# The wrapper/checker layer itself: the only files allowed to touch raw
# primitives and rank bookkeeping, excluded from unit analysis.
EXCLUDED_FILES = {
    os.path.join("src", "common", "mutex.h"),
    os.path.join("src", "common", "lock_rank.h"),
    os.path.join("src", "common", "lock_rank.cc"),
    os.path.join("src", "common", "thread_annotations.h"),
}

ALLOW_RE = re.compile(r"lockgraph:allow\(([a-z-]+)\)")
RANK_RE = re.compile(r"inline\s+constexpr\s+int\s+(k\w+)\s*=\s*(-?\d+)\s*;")

MUTEX_DECL_RE = re.compile(
    r"(?:\bmutable\s+)?(?:common::)?\bMutex\s+(\w+)\s*"
    r"(?:\{\s*(?:common::)?lockrank::(k\w+)\s*\})?\s*$")
MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*\(\s*([\w>.\s-]*?)\s*\)")
REQUIRES_RE = re.compile(r"\bREQUIRES\(([^)]*)\)")
CALL_RE = re.compile(r"(?:(\w+)\s*(?:->|\.)\s*)?([\w~]+)\s*\(")
MAKE_RE = re.compile(r"\bstd::make_(?:shared|unique)<\s*([\w:]+)")
LOCAL_MAKE_RE = re.compile(
    r"\bauto\s+(\w+)\s*=\s*std::make_(?:shared|unique)<\s*([\w:]+)")
LOCAL_PTR_RE = re.compile(r"\b([A-Z][\w:]*)\s*[*&]\s*(\w+)\s*=")
CALLABLE_DECL_RE = re.compile(r"\b(?:MoveOnlyFn|std::function<[^;{}]*>)\s+(\w+)")
USING_FN_RE = re.compile(r"\busing\s+(\w+)\s*=\s*std::function\b")
MEMBER_RE = re.compile(
    r"^(?:mutable\s+|static\s+|const\s+|friend\s+)*"
    r"([\w:]+(?:<[\w:\s,<>*&()]+>)?)\s*(?:[*&]\s*)?(\w+)\s*"
    r"(?:GUARDED_BY\([^)]*\)\s*)?(?:=[^;]*|\{[^;]*\})?$")
LAMBDA_END_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:mutable\s*)?"
    r"(?:->\s*[\w:<>,\s&*]+)?\s*$")
FUNC_END_RE = re.compile(
    r"\([^{;]*\)\s*"
    r"(?:const\s*|noexcept\s*|override\s*|final\s*|mutable\s*|"
    r"[A-Z_]+\([^()]*\)\s*|->\s*[\w:<>,\s&*]+\s*|:\s*[^{;]*)?$",
    re.S)
FUNC_NAME_RE = re.compile(r"([\w~][\w:~]*)\s*\(")
CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(?:alignas\s*\([^()]*\)\s*)?"
    r"(?:\w+\(\s*\)\s*)*([\w:]+)")

SMART_WRAP_RE = re.compile(
    r"^(?:std::)?(?:unique_ptr|shared_ptr|atomic|optional)<\s*(.*?)\s*>?$")


def strip_comments_and_strings(text):
    """Blanks comment/string/char contents, preserving line structure."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state, i = "line", i + 2
                out.append("  ")
            elif c == "/" and nxt == "*":
                state, i = "block", i + 2
                out.append("  ")
            elif c == '"':
                state, i = "str", i + 1
                out.append(" ")
            elif c == "'":
                state, i = "chr", i + 1
                out.append(" ")
            else:
                out.append(c)
                i += 1
        elif state == "line":
            out.append("\n" if c == "\n" else " ")
            if c == "\n":
                state = "code"
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state, i = "code", i + 2
                out.append("  ")
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state, i = "code", i + 1
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def base_type(type_str):
    """'std::shared_ptr<storage::ObjectStore>' -> 'ObjectStore'."""
    t = type_str.strip()
    for _ in range(3):
        m = SMART_WRAP_RE.match(t)
        if not m:
            break
        t = m.group(1).strip()
    t = t.split("<")[0].strip()
    return t.split("::")[-1]


class ClassInfo:
    def __init__(self, name, path):
        self.name = name  # possibly qualified: 'VirtualWarehouse::QueryLease'
        self.path = path
        self.mutexes = {}        # member name -> rank label
        self.member_types = {}   # member name -> base class name
        self.callables = set()   # function-typed member names
        self.method_requires = {}  # method name -> [mutex exprs]


class Unit:
    """One analysis unit: a function body or a lambda body."""

    def __init__(self, kind, name, cls, path, line, header):
        self.kind = kind        # 'function' | 'lambda'
        self.name = name        # 'Worker::AcquireIndex' or '<lambda>'
        self.cls = cls          # enclosing class qualified name, or ''
        self.path = path
        self.line = line
        self.header = header
        self.parent = None      # enclosing Unit, for lambdas
        self.segments = []      # [(start_line, text)] excluding nested units
        self.requires = []      # mutex exprs from REQUIRES(...)
        # Filled by analysis:
        self.direct_acquires = set()   # labels acquired in this body
        self.direct_invokes = False    # invokes a callable directly
        self.calls = []                # [(receiver, name, line, held_labels)]
        self.locals_ranked = {}        # local mutex name -> label
        self.local_types = {}          # local/param name -> base class name
        self.local_callables = set()
        self.acquires = set()          # transitive summary
        self.invokes = False           # transitive summary


class Analyzer:
    def __init__(self, root, verbose=False):
        self.root = root
        self.verbose = verbose
        self.ranks = {}          # label -> int
        self.classes = {}        # qualified name -> ClassInfo
        self.short_classes = {}  # short name -> [ClassInfo]
        self.units = []
        self.func_index = {}     # method/function name -> [Unit]
        self.callables = set()   # all function-typed decl names
        self.fn_aliases = set()  # using X = std::function<...>
        self.member_labels = {}  # member name -> set of labels
        self.findings = []       # (path, line, rule, message)
        self.edges = {}          # (holder, acquired) -> (path, line, via)
        self.allows = {}         # path -> {line: set(rules)}

    # ---------------- reporting ----------------

    def report(self, path, line, rule, message):
        if rule in self.allows.get(path, {}).get(line, set()):
            return
        self.findings.append((path, line, rule, message))

    # ---------------- parsing ----------------

    def collect_sources(self):
        files = []
        src = os.path.join(self.root, "src")
        for dirpath, _, names in os.walk(src):
            for name in sorted(names):
                if name.endswith((".h", ".cc")):
                    rel = os.path.relpath(os.path.join(dirpath, name),
                                          self.root)
                    files.append(rel)
        return sorted(files)

    def parse_ranks(self):
        path = os.path.join(self.root, "src", "common", "lock_rank.h")
        if not os.path.exists(path):
            print(f"lockgraph: missing {path}", file=sys.stderr)
            return False
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for m in RANK_RE.finditer(strip_comments_and_strings(text)):
            self.ranks[m.group(1)] = int(m.group(2))
        return bool(self.ranks)

    def scan_file(self, path):
        with open(os.path.join(self.root, path), encoding="utf-8") as f:
            raw = f.read()
        for lineno, line in enumerate(raw.splitlines(), start=1):
            for m in ALLOW_RE.finditer(line):
                self.allows.setdefault(path, {}).setdefault(
                    lineno, set()).add(m.group(1))
        if path in EXCLUDED_FILES:
            return
        text = strip_comments_and_strings(raw)
        for m in USING_FN_RE.finditer(text):
            self.fn_aliases.add(m.group(1))
        self._scan_blocks(path, text)

    def _scan_blocks(self, path, text):
        """Single pass over a file: tracks namespace/class/function/lambda
        nesting, routes statement text to class bodies and unit bodies."""
        # Stack entries: dicts with kind in
        # {'global','namespace','class','function','lambda','scope'}.
        stack = [{"kind": "global"}]
        cur_unit = None      # innermost Unit on the stack
        cur_class = None     # innermost ClassInfo on the stack
        class_stream = {}    # id(ClassInfo) -> [text]
        chunk = []
        line = 1
        i, n = 0, len(text)

        def flush_to_stream(s):
            if cur_unit is not None:
                if (not cur_unit.segments
                        or cur_unit.segments[-1][2] is not True):
                    cur_unit.segments.append(
                        (line - s.count("\n"), [s], True))
                else:
                    cur_unit.segments[-1][1].append(s)
            elif cur_class is not None:
                class_stream.setdefault(id(cur_class), []).append(s)

        def innermost(kind):
            for entry in reversed(stack):
                if entry["kind"] == kind:
                    return entry
            return None

        def class_chain():
            names = [e["info"].name for e in stack if e["kind"] == "class"]
            return "::".join(names)

        while i < n:
            c = text[i]
            if c == "\n":
                line += 1
            if c == "{":
                header = "".join(chunk)
                chunk = []
                ctx = stack[-1]["kind"]
                entry = None
                if ctx in ("global", "namespace", "class"):
                    stripped = header.strip()
                    mns = re.search(r"\bnamespace\s*([\w:]*)\s*$", stripped)
                    mcl = (None if re.search(r"\benum\b|\bunion\b", stripped)
                           else CLASS_RE.search(stripped))
                    if mns is not None:
                        entry = {"kind": "namespace"}
                    elif (mcl is not None
                          and not re.search(r"\)\s*$", stripped)):
                        qual = mcl.group(1)
                        name = (class_chain() + "::" + qual
                                if ctx == "class" else qual)
                        info = self.classes.get(name)
                        if info is None:
                            info = ClassInfo(name, path)
                            self.classes[name] = info
                            self.short_classes.setdefault(
                                name.split("::")[-1], []).append(info)
                        entry = {"kind": "class", "info": info}
                    elif ("(" in header
                          and FUNC_END_RE.search(header.strip())):
                        entry = self._push_function(path, line, header,
                                                    class_chain())
                    else:
                        flush_to_stream(header + "{")
                        entry = {"kind": "scope"}
                else:  # inside a function/lambda/scope
                    if LAMBDA_END_RE.search(header):
                        flush_to_stream(header)  # keep e.g. 'Submit([this]'
                        unit = Unit("lambda", "<lambda>", "",
                                    path, line, header)
                        unit.parent = cur_unit
                        self.units.append(unit)
                        entry = {"kind": "lambda", "unit": unit}
                    else:
                        flush_to_stream(header + "{")
                        entry = {"kind": "scope"}
                stack.append(entry)
                if entry["kind"] in ("function", "lambda"):
                    cur_unit = entry["unit"]
                if entry["kind"] == "class":
                    cur_class = entry["info"]
                i += 1
                continue
            if c == "}":
                leftover = "".join(chunk)
                chunk = []
                if leftover.strip():
                    flush_to_stream(leftover)
                if len(stack) > 1:
                    closed = stack.pop()
                    if closed["kind"] == "scope":
                        flush_to_stream("}")
                    elif closed["kind"] == "class":
                        self._finish_class(
                            closed["info"],
                            "".join(class_stream.pop(id(closed["info"]),
                                                     [])))
                    # Recompute innermost unit/class pointers.
                    cur_unit = None
                    cur_class = None
                    fentry = innermost("function") or innermost("lambda")
                    # innermost of either kind: walk stack once more
                    for e in reversed(stack):
                        if e["kind"] in ("function", "lambda"):
                            cur_unit = e["unit"]
                            break
                    for e in reversed(stack):
                        if e["kind"] == "class":
                            cur_class = e["info"]
                            break
                    del fentry
                i += 1
                continue
            if c == ";":
                chunk.append(c)
                flush_to_stream("".join(chunk))
                chunk = []
                i += 1
                continue
            chunk.append(c)
            i += 1

    def _push_function(self, path, line, header, cls_chain):
        stripped = header.strip()
        # Drop a trailing ctor-init list so FUNC_NAME_RE sees the signature.
        m = FUNC_NAME_RE.search(stripped)
        name = m.group(1) if m else "<anon>"
        if cls_chain and "::" not in name:
            qual_cls = cls_chain
        elif "::" in name:
            qual_cls = name.rsplit("::", 1)[0]
        else:
            qual_cls = ""
        short = name.rsplit("::", 1)[-1]
        unit = Unit("function", name, qual_cls, path, line, header)
        for rm in REQUIRES_RE.finditer(header):
            unit.requires.extend(
                e.strip() for e in rm.group(1).split(",") if e.strip())
        # Simple parameter types: '..., VirtualWarehouse* vw, ...'
        paren = stripped.find("(")
        close = stripped.rfind(")")
        if 0 <= paren < close:
            for part in stripped[paren + 1:close].split(","):
                pm = re.match(
                    r"\s*(?:const\s+)?([\w:]+(?:<[^<>]*>)?)\s*[*&]?\s*(\w+)"
                    r"\s*$", part)
                if pm:
                    unit.local_types[pm.group(2)] = base_type(pm.group(1))
            for cm in CALLABLE_DECL_RE.finditer(stripped[paren:close + 1]):
                unit.local_callables.add(cm.group(1))
            for alias in self.fn_aliases:
                for am in re.finditer(
                        r"\b" + alias + r"\s+(\w+)", stripped[paren:close + 1]):
                    unit.local_callables.add(am.group(1))
        self.units.append(unit)
        self.func_index.setdefault(short, []).append(unit)
        return {"kind": "function", "unit": unit}

    def _finish_class(self, info, stream):
        for stmt in stream.split(";"):
            stmt = re.sub(r"^(?:\s*(?:public|private|protected)\s*:)+", "",
                          stmt).strip()
            if not stmt:
                continue
            if "(" in stmt and "GUARDED_BY" not in stmt.split("(")[0]:
                # Method declaration: harvest REQUIRES for out-of-line defs.
                nm = FUNC_NAME_RE.search(stmt)
                if nm:
                    reqs = []
                    for rm in REQUIRES_RE.finditer(stmt):
                        reqs.extend(e.strip() for e in rm.group(1).split(",")
                                    if e.strip())
                    if reqs:
                        info.method_requires.setdefault(
                            nm.group(1).rsplit("::", 1)[-1], []).extend(reqs)
                # A std::function-typed member also contains parens.
                for cm in CALLABLE_DECL_RE.finditer(stmt):
                    if stmt.rstrip().endswith(cm.group(1)):
                        info.callables.add(cm.group(1))
                        self.callables.add(cm.group(1))
                continue
            dm = MUTEX_DECL_RE.search(stmt)
            if dm:
                name, label = dm.group(1), dm.group(2)
                if label is None:
                    self.report(info.path, 1, "unranked-mutex",
                                f"{info.name}::{name} has no lockrank:: "
                                "constant; every mutex in src/ must be "
                                "constructed with a rank (lock_rank.h)")
                    continue
                if label not in self.ranks:
                    self.report(info.path, 1, "unknown-rank",
                                f"{info.name}::{name} uses {label}, which is "
                                "not defined in src/common/lock_rank.h")
                    continue
                info.mutexes[name] = label
                self.member_labels.setdefault(name, set()).add(label)
                continue
            mm = MEMBER_RE.match(stmt)
            if mm:
                tname, mname = mm.group(1), mm.group(2)
                if tname in ("return", "using", "typedef", "public",
                             "private", "protected", "else"):
                    continue
                bt = base_type(tname)
                if (tname.startswith("std::function") or tname == "MoveOnlyFn"
                        or bt in self.fn_aliases):
                    info.callables.add(mname)
                    self.callables.add(mname)
                else:
                    info.member_types[mname] = bt

    # ---------------- resolution ----------------

    def _class_by_short(self, short):
        infos = self.short_classes.get(short, [])
        return infos[0] if len(infos) == 1 else None

    def _enclosing_chain(self, cls):
        """'A::B::C' -> [ClassInfo(A::B::C), ClassInfo(A::B), ClassInfo(A)]"""
        chain = []
        parts = cls.split("::") if cls else []
        while parts:
            info = self.classes.get("::".join(parts))
            if info is None:
                info = self._class_by_short(parts[-1])
            if info is not None:
                chain.append(info)
            parts.pop()
        return chain

    def resolve_mutex_expr(self, unit, expr):
        """Returns (label, error_message)."""
        expr = expr.strip()
        if not expr:
            return None, "empty mutex expression"
        parts = re.split(r"->|\.", expr)
        parts = [p.strip() for p in parts if p.strip()]
        if len(parts) == 1:
            name = parts[0]
            if name in unit.locals_ranked:
                return unit.locals_ranked[name], None
            for info in self._enclosing_chain(unit.cls):
                if name in info.mutexes:
                    return info.mutexes[name], None
            labels = self.member_labels.get(name, set())
            if len(labels) == 1:
                return next(iter(labels)), None
            if len(labels) > 1:
                return None, (f"`{expr}` matches members with different "
                              f"ranks {sorted(labels)}")
            return None, f"`{expr}` does not resolve to a ranked mutex"
        base, member = parts[0], parts[-1]
        bt = unit.local_types.get(base)
        if bt is None:
            for info in self._enclosing_chain(unit.cls):
                if base in info.member_types:
                    bt = info.member_types[base]
                    break
        if bt is not None:
            binfo = self._class_by_short(bt)
            if binfo is not None and member in binfo.mutexes:
                return binfo.mutexes[member], None
        labels = self.member_labels.get(member, set())
        if len(labels) == 1:
            return next(iter(labels)), None
        if len(labels) > 1:
            return None, (f"`{expr}` matches members with different ranks "
                          f"{sorted(labels)}")
        return None, f"`{expr}` does not resolve to a ranked mutex"

    def resolve_call(self, unit, receiver, name):
        """Returns list of candidate Units, or [] when unknown/ambiguous."""
        if name == receiver is None and False:
            return []
        candidates = self.func_index.get(name, [])
        if not candidates:
            return []
        if receiver:
            bt = unit.local_types.get(receiver)
            if bt is None:
                for info in self._enclosing_chain(unit.cls):
                    if receiver in info.member_types:
                        bt = info.member_types[receiver]
                        break
            if bt is not None:
                # The receiver's class is known: either the method resolves
                # inside it, or this call is not to a function we model
                # (e.g. CondVar::Wait in the excluded wrapper). Never fall
                # through to name-based resolution from a typed receiver.
                return [u for u in candidates
                        if u.cls.split("::")[-1] == bt]
        else:
            for info in self._enclosing_chain(unit.cls):
                own = [u for u in candidates if u.cls == info.name]
                if own:
                    return own
            free = [u for u in candidates if u.cls == ""]
            if free:
                return free
        if len(candidates) == 1:
            return candidates
        # Ambiguous: usable only if every candidate agrees (direct facts
        # included so the verdict is stable across fixpoint rounds).
        sigs = {(frozenset(u.acquires | u.direct_acquires),
                 u.invokes or u.direct_invokes) for u in candidates}
        return candidates if len(sigs) == 1 else []

    # ---------------- unit analysis ----------------

    def analyze_unit(self, unit):
        # Lambdas see the enclosing function's typed locals (captures keep
        # the same names); units are analyzed in creation order, so the
        # parent's locals are complete by the time the lambda runs.
        if unit.parent is not None:
            for lname, ltype in unit.parent.local_types.items():
                unit.local_types.setdefault(lname, ltype)
        chars = []
        lines = []
        for start_line, parts, _ in unit.segments:
            ln = start_line
            for part in parts:
                for ch in part:
                    chars.append(ch)
                    lines.append(ln)
                    if ch == "\n":
                        ln += 1
        body = "".join(chars)
        depth = []
        d = 0
        for ch in body:
            if ch == "{":
                d += 1
            depth.append(d)
            if ch == "}":
                d = max(0, d - 1)

        # Locals: ranked mutexes, typed vars, callables.
        for m in re.finditer(
                r"(?:common::)?\bMutex\s+(\w+)\s*\{\s*(?:common::)?"
                r"lockrank::(k\w+)", body):
            if m.group(2) in self.ranks:
                unit.locals_ranked[m.group(1)] = m.group(2)
            else:
                self.report(unit.path, lines[m.start()], "unknown-rank",
                            f"{m.group(2)} is not defined in lock_rank.h")
        for m in re.finditer(r"(?:common::)?\bMutex\s+(\w+)\s*;", body):
            self.report(unit.path, lines[m.start()], "unranked-mutex",
                        f"local mutex `{m.group(1)}` in {unit.name} has no "
                        "lockrank:: constant")
        for m in LOCAL_MAKE_RE.finditer(body):
            unit.local_types[m.group(1)] = base_type(m.group(2))
        for m in LOCAL_PTR_RE.finditer(body):
            unit.local_types.setdefault(m.group(2), base_type(m.group(1)))
        for m in CALLABLE_DECL_RE.finditer(body):
            unit.local_callables.add(m.group(1))

        # REQUIRES: from the definition header plus the class declaration.
        reqs = list(unit.requires)
        short = unit.name.rsplit("::", 1)[-1]
        for info in self._enclosing_chain(unit.cls):
            reqs.extend(info.method_requires.get(short, []))
        entry_held = []
        for expr in reqs:
            label, err = self.resolve_mutex_expr(unit, expr)
            if label is not None:
                entry_held.append((label, f"REQUIRES({expr})"))

        # Held regions: each MutexLock is active until depth drops below the
        # depth at its declaration.
        regions = []  # (start, end, label)
        for m in MUTEXLOCK_RE.finditer(body):
            pos = m.start()
            label, err = self.resolve_mutex_expr(unit, m.group(1))
            if label is None:
                self.report(unit.path, lines[pos], "ambiguous-mutex",
                            f"in {unit.name}: {err}")
                continue
            d0 = depth[pos]
            end = len(body)
            for j in range(m.end(), len(body)):
                if depth[j] < d0:
                    end = j
                    break
            regions.append((pos, end, label, lines[pos]))

        def held_at(pos):
            held = list(entry_held)
            held.extend((lab, f"MutexLock at line {ln}")
                        for (s, e, lab, ln) in regions if s < pos < e)
            return held

        # Direct nested acquisitions -> edges.
        for (s, e, label, ln) in regions:
            unit.direct_acquires.add(label)
            for (hl, why) in held_at(s):
                self.add_edge(hl, label, unit.path, ln,
                              f"{unit.name} ({why})")

        # Calls.
        for m in CALL_RE.finditer(body):
            receiver, name = m.group(1), m.group(2)
            if name in ("if", "for", "while", "switch", "return", "sizeof",
                        "MutexLock", "Mutex", "catch", "GUARDED_BY",
                        "REQUIRES", "EXCLUDES", "defined", "alignof",
                        "decltype", "noexcept"):
                continue
            pos = m.start()
            held = held_at(pos)
            is_callable = (name in self.callables
                           or name in unit.local_callables)
            if is_callable:
                unit.direct_invokes = True
                if held:
                    hl = held[-1][0]
                    self.report(
                        unit.path, lines[pos], "callback-under-lock",
                        f"{unit.name} invokes callable `{name}` while "
                        f"holding {hl}; release the lock before calling out")
                continue
            mk = MAKE_RE.match(body, pos) if name.startswith("make_") else None
            if mk is not None:
                cls_short = base_type(mk.group(1))
                name = cls_short
                receiver = None
                ctor = [u for u in self.func_index.get(cls_short, [])
                        if u.cls.split("::")[-1] == cls_short]
                if not ctor:
                    continue
            unit.calls.append((receiver, name, lines[pos],
                               tuple(h[0] for h in held)))

    def add_edge(self, holder, acquired, path, line, via):
        key = (holder, acquired)
        if key not in self.edges:
            self.edges[key] = (path, line, via)

    # ---------------- whole-program passes ----------------

    def compute_summaries(self):
        changed = True
        rounds = 0
        while changed and rounds < 50:
            changed = False
            rounds += 1
            for unit in self.units:
                if unit.kind != "function":
                    continue
                acquires = set(unit.direct_acquires)
                invokes = unit.direct_invokes
                for (receiver, name, _, _) in unit.calls:
                    for cand in self.resolve_call(unit, receiver, name):
                        acquires |= cand.acquires
                        invokes = invokes or cand.invokes
                if acquires != unit.acquires or invokes != unit.invokes:
                    unit.acquires = acquires
                    unit.invokes = invokes
                    changed = True

    def propagate_call_edges(self):
        for unit in self.units:
            for (receiver, name, line, held) in unit.calls:
                if not held:
                    continue
                cands = self.resolve_call(unit, receiver, name)
                if not cands:
                    continue
                acquired = set()
                invokes = False
                for cand in cands:
                    acquired |= cand.acquires
                    invokes = invokes or cand.invokes
                callee = cands[0].name
                if invokes:
                    self.report(
                        unit.path, line, "callback-under-lock",
                        f"{unit.name} calls {callee} — which can invoke a "
                        f"continuation/callback inline — while holding "
                        f"{held[-1]}; release the lock first (e.g. fire "
                        "SetValue after a scoped unlock)")
                for lab in acquired:
                    for hl in held:
                        self.add_edge(hl, lab, unit.path, line,
                                      f"{unit.name} -> {callee}")

    def check_graph(self):
        for (a, b), (path, line, via) in sorted(self.edges.items()):
            ra, rb = self.ranks.get(a), self.ranks.get(b)
            if ra is None or rb is None:
                continue
            if a == b and a.endswith("Shard"):
                # Per-core shard family: siblings share one rank on purpose;
                # the steal protocol forbids holding two shard locks at once.
                self.report(
                    path, line, "shard-nesting",
                    f"{b} acquired while a sibling {a} shard lock is held "
                    f"via {via}; shard-family locks must never nest — "
                    "release the local shard before locking a victim's "
                    "(work-stealing holds at most one shard lock)")
                continue
            if ra <= rb:
                self.report(
                    path, line, "order-violation",
                    f"{b} (rank {rb}) acquired while {a} (rank {ra}) is "
                    f"held via {via}; acquisition order must be strictly "
                    "decreasing in rank")
        # Cycle detection over the label graph. Shard-family self-edges were
        # already reported above (one rule per defect).
        graph = {}
        for (a, b) in self.edges:
            if a == b and a.endswith("Shard"):
                continue
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        WHITE, GREY, BLACK = 0, 1, 2
        color = {v: WHITE for v in graph}
        stack = []

        def dfs(v):
            color[v] = GREY
            stack.append(v)
            for w in sorted(graph[v]):
                if color[w] == GREY:
                    return stack[stack.index(w):] + [w]
                if color[w] == WHITE:
                    cyc = dfs(w)
                    if cyc:
                        return cyc
            stack.pop()
            color[v] = BLACK
            return None

        for v in sorted(graph):
            if color[v] == WHITE:
                cyc = dfs(v)
                if cyc:
                    path, line, via = self.edges[(cyc[0], cyc[1])]
                    self.report(path, line, "cycle",
                                "lock-acquisition cycle: "
                                + " -> ".join(cyc))
                    break

    # ---------------- output ----------------

    def dot(self):
        out = ["digraph lockgraph {"]
        out.append('  rankdir="TB";')
        out.append('  node [shape=box, fontname="monospace"];')
        labels = sorted(self.ranks, key=lambda k: -self.ranks[k])
        used = {v for e in self.edges for v in e}
        for lab in labels:
            if lab == "kUnranked":
                continue
            style = "" if lab in used else ', style="dashed"'
            out.append(f'  "{lab}" [label="{lab}\\n{self.ranks[lab]}"'
                       f'{style}];')
        for (a, b), (path, line, via) in sorted(self.edges.items()):
            out.append(f'  "{a}" -> "{b}" [tooltip="{path}:{line}"];')
        out.append("}")
        return "\n".join(out)

    # ---------------- driver ----------------

    def run(self):
        if not self.parse_ranks():
            print("lockgraph: no ranks parsed from src/common/lock_rank.h",
                  file=sys.stderr)
            return 1
        files = self.collect_sources()
        if not files:
            print(f"lockgraph: no sources under "
                  f"{os.path.join(self.root, 'src')}", file=sys.stderr)
            return 1
        for path in files:
            self.scan_file(path)
        for unit in self.units:
            self.analyze_unit(unit)
        self.compute_summaries()
        self.propagate_call_edges()
        self.check_graph()
        if self.verbose:
            print(f"lockgraph: {len(self.units)} units, "
                  f"{len(self.classes)} classes, {len(self.edges)} edges",
                  file=sys.stderr)
            for (a, b), (path, line, via) in sorted(self.edges.items()):
                print(f"  {a} -> {b}  ({path}:{line} {via})",
                      file=sys.stderr)
        for path, line, rule, message in sorted(set(self.findings)):
            print(f"{path}:{line}: [{rule}] {message}")
        if self.findings:
            print(f"lockgraph: {len(self.findings)} finding(s) in "
                  f"{len(files)} files", file=sys.stderr)
            return 1
        print(f"lockgraph: OK ({len(files)} files, {len(self.units)} units, "
              f"{len(self.edges)} acquisition edges)")
        return 0


# ---------------- self-test ----------------

SELFTEST_RANK_H = """
#pragma once
namespace blendhouse::common::lockrank {
inline constexpr int kUnranked = -1;
inline constexpr int kOuter = 200;
inline constexpr int kInner = 100;
inline constexpr int kTestShard = 50;
}
"""

SELFTEST_A_H = """
#pragma once
namespace blendhouse::foo {
class Widget {
 public:
  void Good();
  void Bad();
  void Fire();
 private:
  common::Mutex outer_{common::lockrank::kOuter};
  common::Mutex inner_{common::lockrank::kInner};
  common::Mutex stray_;
  MoveOnlyFn cb_;
};
}
"""

SELFTEST_A_CC = """
#include "foo/a.h"
namespace blendhouse::foo {
void Widget::Good() {
  common::MutexLock lock(outer_);
  common::MutexLock inner_lock(inner_);
}
void Widget::Bad() {
  common::MutexLock lock(inner_);
  common::MutexLock outer_lock(outer_);
}
void Widget::Fire() {
  common::MutexLock lock(inner_);
  cb_();
}
}
"""

SELFTEST_B_H = """
#pragma once
namespace blendhouse::foo {
class Pool {
 public:
  void BadSteal();
 private:
  struct alignas(64) PoolShard {
    common::Mutex mu{common::lockrank::kTestShard};
  };
  std::deque<PoolShard> shards_;
};
}
"""

SELFTEST_B_CC = """
#include "foo/b.h"
namespace blendhouse::foo {
void Pool::BadSteal() {
  PoolShard& own = shards_[0];
  common::MutexLock lock(own.mu);
  PoolShard& victim = shards_[1];
  common::MutexLock steal_lock(victim.mu);
}
}
"""


def self_test():
    with tempfile.TemporaryDirectory() as tmp:
        common = os.path.join(tmp, "src", "common")
        foo = os.path.join(tmp, "src", "foo")
        os.makedirs(common)
        os.makedirs(foo)
        with open(os.path.join(common, "lock_rank.h"), "w",
                  encoding="utf-8") as f:
            f.write(SELFTEST_RANK_H)
        with open(os.path.join(foo, "a.h"), "w", encoding="utf-8") as f:
            f.write(SELFTEST_A_H)
        with open(os.path.join(foo, "a.cc"), "w", encoding="utf-8") as f:
            f.write(SELFTEST_A_CC)
        with open(os.path.join(foo, "b.h"), "w", encoding="utf-8") as f:
            f.write(SELFTEST_B_H)
        with open(os.path.join(foo, "b.cc"), "w", encoding="utf-8") as f:
            f.write(SELFTEST_B_CC)
        analyzer = Analyzer(tmp)
        rc = analyzer.run()
        rules = {r for (_, _, r, _) in analyzer.findings}
        expected = {"order-violation", "cycle", "callback-under-lock",
                    "unranked-mutex", "shard-nesting"}
        missing = expected - rules
        if rc == 0 or missing:
            print(f"lockgraph self-test FAILED: rc={rc}, "
                  f"missing rules: {sorted(missing)}", file=sys.stderr)
            return 1
        # The monotone Good() edge must NOT be reported.
        for (_, _, rule, msg) in analyzer.findings:
            if rule == "order-violation" and "kInner (rank 100) acquired" \
                    in msg:
                print("lockgraph self-test FAILED: flagged the monotone "
                      "outer->inner edge", file=sys.stderr)
                return 1
        print("lockgraph self-test OK "
              f"(detected: {', '.join(sorted(expected))})")
        return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("root", nargs="?", default=".")
    parser.add_argument("--dot", metavar="FILE",
                        help="write the acquisition graph as DOT "
                             "('-' for stdout)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded-violation self-test and exit")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    analyzer = Analyzer(args.root, verbose=args.verbose)
    rc = analyzer.run()
    if args.dot:
        text = analyzer.dot()
        if args.dot == "-":
            print(text)
        else:
            with open(args.dot, "w", encoding="utf-8") as f:
                f.write(text + "\n")
    return rc


if __name__ == "__main__":
    sys.exit(main())
