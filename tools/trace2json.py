#!/usr/bin/env python3
"""Converts a TraceSink dump (trace::TraceSink::DumpJson) into Chrome trace
JSON loadable by chrome://tracing or https://ui.perfetto.dev.

Usage:
  tools/trace2json.py [dump.json] [-o out.json]
  tools/trace2json.py --self-test

Reads the sink dump from the given file (or stdin), writes Chrome trace
events to -o (or stdout). Each trace becomes one "process" (pid = trace_id);
spans become complete ("X") events. Concurrent spans of one trace are packed
onto the fewest "threads" (lanes) that keep every lane non-overlapping, so a
query renders as a compact waterfall instead of one row per span.

Tail-based retention metadata (DESIGN.md §15) is surfaced per process: the
retention reason ("slow" / "error" / "sampled") is appended to the process
name, and the query fingerprint plus root latency land in a process_labels
metadata event, so a Perfetto session over a retained-slow dump shows *why*
each trace was kept. Span-level fingerprint / distance_comps tags pass
through into event args unchanged.

--self-test round-trips a captured retained-slow TraceSink dump (verbatim
DumpJson output) and asserts the retention fields survive conversion; it runs
as the `trace2json-selftest` ctest.
"""

import argparse
import json
import sys

# Verbatim trace::TraceSink::DumpJson output for a retained-slow query trace
# (root latency above the slow threshold): the format contract this converter
# is tested against.
SELF_TEST_DUMP = r"""
[{"trace_id":1,"name":"query","retention_reason":"slow","fingerprint":"SELECT
 id, dist FROM items WHERE attr < ? ORDER BY L2Distance(emb, ?) AS dist
 LIMIT ?","latency_micros":5234.500,"spans":[{"span_id":2,"parent_id":1,
"start_micros":7.706,"wall_micros":0.260,"compute_micros":12.000,
"sim_io_micros":0.000,"queue_wait_micros":0.000,"name":"plan","tags":{}},
{"span_id":4,"parent_id":3,"start_micros":9.149,"wall_micros":1.052,
"compute_micros":200.000,"sim_io_micros":40.000,"queue_wait_micros":10.000,
"name":"segment_scan","tags":{"segment":"items_seg_0",
"distance_comps":"1024"}},{"span_id":3,"parent_id":1,"start_micros":8.831,
"wall_micros":1.929,"compute_micros":0.000,"sim_io_micros":0.000,
"queue_wait_micros":0.000,"name":"execute","tags":{}},{"span_id":1,
"parent_id":0,"start_micros":1.894,"wall_micros":9.365,
"compute_micros":0.000,"sim_io_micros":0.000,"queue_wait_micros":0.000,
"name":"query","tags":{"table":"items","type":"ann",
"fingerprint":"00c0ffee00c0ffee"}}]}]
"""


def assign_lanes(spans):
    """Greedy interval packing: span -> lane index (tid)."""
    lanes = []  # lane -> end time of its last span
    out = {}
    for span in sorted(spans, key=lambda s: (s["start_micros"], s["span_id"])):
        start = span["start_micros"]
        end = start + span["wall_micros"]
        for i, lane_end in enumerate(lanes):
            if lane_end <= start:
                lanes[i] = end
                out[span["span_id"]] = i
                break
        else:
            out[span["span_id"]] = len(lanes)
            lanes.append(end)
    return out


def convert(sink_dump):
    events = []
    for trace in sink_dump:
        pid = trace["trace_id"]
        spans = trace.get("spans", [])
        lanes = assign_lanes(spans)
        pname = f'{trace.get("name", "trace")} #{pid}'
        retention = trace.get("retention_reason")
        if retention:
            pname += f" [{retention}]"
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": pname},
        })
        labels = []
        if retention:
            labels.append(f"retention={retention}")
        if trace.get("fingerprint"):
            labels.append(f'fingerprint={trace["fingerprint"]}')
        if "latency_micros" in trace:
            labels.append(f'latency_micros={trace["latency_micros"]}')
        if labels:
            events.append({
                "ph": "M", "pid": pid, "tid": 0, "name": "process_labels",
                "args": {"labels": ", ".join(labels)},
            })
        for span in spans:
            args = {
                "parent_id": span.get("parent_id", 0),
                "compute_micros": span.get("compute_micros", 0),
                "sim_io_micros": span.get("sim_io_micros", 0),
                "queue_wait_micros": span.get("queue_wait_micros", 0),
            }
            args.update(span.get("tags", {}))
            events.append({
                "ph": "X",
                "pid": pid,
                "tid": lanes[span["span_id"]],
                "name": span["name"],
                "cat": trace.get("name", "trace"),
                "ts": span["start_micros"],
                "dur": max(span["wall_micros"], 1e-3),
                "args": args,
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def self_test():
    dump = json.loads(SELF_TEST_DUMP.replace("\n", ""))
    result = convert(dump)
    events = result["traceEvents"]

    def fail(msg):
        print(f"trace2json self-test FAILED: {msg}", file=sys.stderr)
        return 1

    metas = {e["name"]: e for e in events if e["ph"] == "M"}
    if "process_name" not in metas:
        return fail("no process_name metadata")
    if "[slow]" not in metas["process_name"]["args"]["name"]:
        return fail("retention reason missing from process name")
    if "process_labels" not in metas:
        return fail("no process_labels metadata")
    labels = metas["process_labels"]["args"]["labels"]
    for needle in ("retention=slow", "fingerprint=SELECT", "latency_micros="):
        if needle not in labels:
            return fail(f"process_labels missing {needle!r}")

    slices = [e for e in events if e["ph"] == "X"]
    if len(slices) != 4:
        return fail(f"expected 4 span events, got {len(slices)}")
    by_name = {e["name"]: e for e in slices}
    for required in ("query", "plan", "execute", "segment_scan"):
        if required not in by_name:
            return fail(f"missing span {required!r}")
    # Span tags (fingerprint on the root, distance_comps on the scan) pass
    # through into event args.
    if by_name["query"]["args"].get("fingerprint") != "00c0ffee00c0ffee":
        return fail("root span fingerprint tag lost")
    if by_name["segment_scan"]["args"].get("distance_comps") != "1024":
        return fail("segment_scan distance_comps tag lost")
    # Parent/child spans overlap in time, so lane packing must separate the
    # root from its children.
    if by_name["query"]["tid"] == by_name["execute"]["tid"]:
        return fail("overlapping spans share a lane")
    print("trace2json self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("input", nargs="?", default="-",
                        help="TraceSink dump JSON (default: stdin)")
    parser.add_argument("-o", "--output", default="-",
                        help="Chrome trace JSON output (default: stdout)")
    parser.add_argument("--self-test", action="store_true",
                        help="round-trip a captured retained-slow dump")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    if args.input == "-":
        sink_dump = json.load(sys.stdin)
    else:
        with open(args.input, encoding="utf-8") as f:
            sink_dump = json.load(f)

    result = convert(sink_dump)
    text = json.dumps(result, indent=1)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text + "\n")
        n_traces = len(sink_dump)
        n_events = len(result["traceEvents"])
        print(f"wrote {n_events} events from {n_traces} traces to "
              f"{args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
