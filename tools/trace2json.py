#!/usr/bin/env python3
"""Converts a TraceSink dump (trace::TraceSink::DumpJson) into Chrome trace
JSON loadable by chrome://tracing or https://ui.perfetto.dev.

Usage:
  tools/trace2json.py [dump.json] [-o out.json]

Reads the sink dump from the given file (or stdin), writes Chrome trace
events to -o (or stdout). Each trace becomes one "process" (pid = trace_id);
spans become complete ("X") events. Concurrent spans of one trace are packed
onto the fewest "threads" (lanes) that keep every lane non-overlapping, so a
query renders as a compact waterfall instead of one row per span.
"""

import argparse
import json
import sys


def assign_lanes(spans):
    """Greedy interval packing: span -> lane index (tid)."""
    lanes = []  # lane -> end time of its last span
    out = {}
    for span in sorted(spans, key=lambda s: (s["start_micros"], s["span_id"])):
        start = span["start_micros"]
        end = start + span["wall_micros"]
        for i, lane_end in enumerate(lanes):
            if lane_end <= start:
                lanes[i] = end
                out[span["span_id"]] = i
                break
        else:
            out[span["span_id"]] = len(lanes)
            lanes.append(end)
    return out


def convert(sink_dump):
    events = []
    for trace in sink_dump:
        pid = trace["trace_id"]
        spans = trace.get("spans", [])
        lanes = assign_lanes(spans)
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": f'{trace.get("name", "trace")} #{pid}'},
        })
        for span in spans:
            args = {
                "parent_id": span.get("parent_id", 0),
                "compute_micros": span.get("compute_micros", 0),
                "sim_io_micros": span.get("sim_io_micros", 0),
                "queue_wait_micros": span.get("queue_wait_micros", 0),
            }
            args.update(span.get("tags", {}))
            events.append({
                "ph": "X",
                "pid": pid,
                "tid": lanes[span["span_id"]],
                "name": span["name"],
                "cat": trace.get("name", "trace"),
                "ts": span["start_micros"],
                "dur": max(span["wall_micros"], 1e-3),
                "args": args,
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("input", nargs="?", default="-",
                        help="TraceSink dump JSON (default: stdin)")
    parser.add_argument("-o", "--output", default="-",
                        help="Chrome trace JSON output (default: stdout)")
    args = parser.parse_args()

    if args.input == "-":
        sink_dump = json.load(sys.stdin)
    else:
        with open(args.input, encoding="utf-8") as f:
            sink_dump = json.load(f)

    result = convert(sink_dump)
    text = json.dumps(result, indent=1)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text + "\n")
        n_traces = len(sink_dump)
        n_events = len(result["traceEvents"])
        print(f"wrote {n_events} events from {n_traces} traces to "
              f"{args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
